//! Stateful model-based fuzzing of [`HomaEndpoint`] pairs.
//!
//! The scenario fuzzers exercise whole simulator runs; this module goes
//! one level deeper and drives the protocol state machine itself. A
//! seeded op-sequence generator ([`OpTrace::arbitrary`]) interleaves the
//! endpoint's entire public driving surface — `send_message`,
//! `begin_rpc`, `send_response`, `on_packet`, `timer_tick`,
//! `poll_transmit` — with faults on an adversarial in-memory channel
//! (drop, duplicate, reorder within a bounded window, delay past the
//! resend timeout). A small reference model checks protocol invariants
//! after every op:
//!
//! * granted / sent / received bytes never exceed the message length,
//!   and every in-flight DATA header's `msg_len` matches the model;
//! * delivery is at-most-once per [`MsgKey`] *unless the channel made
//!   byte-level redundancy possible* (a duplicated DATA packet, or any
//!   `retransmit` DATA observed on the wire — Homa is at-least-once by
//!   design, §3.8, so duplicates are only legal when duplicate bytes
//!   exist);
//! * no new grants for a delivered message (same redundancy carve-out:
//!   ghost state re-created by duplicate DATA may re-grant);
//! * `RpcCompleted` fires at most once per RPC, never after an abort,
//!   and always with the length the application actually responded with;
//! * `outstanding_rpcs` / `client_rpc_seqs` bookkeeping matches the
//!   model exactly, and `delivered_bytes` is monotone.
//!
//! After the op sequence, the harness drains the pair over a fault-free
//! channel (answering every delivered request like a well-behaved
//! application) and requires full quiescence: no inbound or outbound
//! state, no outstanding RPCs, no pending packets, and every message
//! accounted for — delivered, aborted, or provably lost to a channel
//! drop. Failures shrink with the family-wide greedy shrinker to a
//! replayable one-line op trace ([`OpTrace::to_ops_line`] /
//! [`parse_ops_line`]), mirroring the spec-line replay flow.

use super::{shrink_to_minimal_with, SplitMix64};
use homa::config::HomaConfig;
use homa::endpoint::{HomaEndpoint, HomaEvent};
use homa::packets::{Dir, HomaPacket, MsgKey, PeerId};
use std::collections::{HashMap, HashSet, VecDeque};

/// Which endpoint of the pair an op acts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum End {
    /// Endpoint `a`, peer id 0.
    A,
    /// Endpoint `b`, peer id 1.
    B,
}

impl End {
    fn idx(self) -> usize {
        match self {
            End::A => 0,
            End::B => 1,
        }
    }

    fn peer(self) -> PeerId {
        PeerId(self.idx() as u32)
    }

    fn other(self) -> End {
        match self {
            End::A => End::B,
            End::B => End::A,
        }
    }

    fn letter(self) -> char {
        match self {
            End::A => 'a',
            End::B => 'b',
        }
    }

    fn from_letter(c: char) -> Option<End> {
        match c {
            'a' => Some(End::A),
            'b' => Some(End::B),
            _ => None,
        }
    }
}

/// One step of a stateful fuzz run. Channel-fault ops act on the queue
/// of packets *headed to* the named endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `who` starts a one-way message of `len` bytes to the other end.
    SendMessage {
        /// Acting endpoint.
        who: End,
        /// Message length in bytes (≥ 1).
        len: u64,
    },
    /// `who` begins an RPC; the eventual response will be `resp_len`.
    BeginRpc {
        /// Acting endpoint (the client).
        who: End,
        /// Request length in bytes (≥ 1).
        req_len: u64,
        /// Response length the application will answer with (≥ 1).
        resp_len: u64,
    },
    /// `who` answers its oldest still-unanswered delivered request.
    /// A no-op if none is pending.
    Respond {
        /// Acting endpoint (the server).
        who: End,
    },
    /// Pull up to `count` packets out of `who` onto the channel.
    Poll {
        /// Acting endpoint.
        who: End,
        /// Maximum packets to pull.
        count: u32,
    },
    /// Deliver up to `count` queued packets into `to`.
    Deliver {
        /// Receiving endpoint.
        to: End,
        /// Maximum packets to deliver.
        count: u32,
    },
    /// Advance the shared clock by `advance_ns`, then tick `who`.
    Tick {
        /// Endpoint whose timers run.
        who: End,
        /// Nanoseconds to advance the shared clock first.
        advance_ns: u64,
    },
    /// Drop the head packet queued toward `to`.
    DropHead {
        /// Victim queue's endpoint.
        to: End,
    },
    /// Duplicate the head packet queued toward `to` (copy goes to the
    /// back of the queue).
    DupHead {
        /// Victim queue's endpoint.
        to: End,
    },
    /// Swap the head packet toward `to` with the one `depth` places
    /// behind it (bounded-window reorder).
    ReorderHead {
        /// Victim queue's endpoint.
        to: End,
        /// Window depth (clamped to the queue).
        depth: u32,
    },
    /// Move the head packet toward `to` to the back of the queue; with
    /// a following [`Op::Tick`] past the resend interval this models
    /// delay beyond the retransmission timeout.
    DelayHead {
        /// Victim queue's endpoint.
        to: End,
    },
}

/// A replayable sequence of [`Op`]s: the stateful analog of a
/// [`crate::ScenarioSpec`] — a run is a pure function of its trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpTrace {
    /// The ops, applied in order.
    pub ops: Vec<Op>,
}

/// Clock advances the generator draws from: sub-interval nudges, just
/// past the resend interval (2 ms by default), and far past the whole
/// abort budget.
const TICK_ADVANCES: [u64; 5] = [50_000, 300_000, 2_100_000, 2_600_000, 11_000_000];

fn arbitrary_len(rng: &mut SplitMix64) -> u64 {
    match rng.below(10) {
        0..=3 => rng.range(1, 1_400),     // single packet
        4..=6 => rng.range(1_401, 9_700), // inside the blind prefix
        _ => rng.range(9_701, 60_000),    // needs grants
    }
}

fn arbitrary_end(rng: &mut SplitMix64) -> End {
    if rng.chance(1, 2) {
        End::A
    } else {
        End::B
    }
}

impl OpTrace {
    /// A seeded, bounded random op sequence. Polls and delivers dominate
    /// so traffic actually flows; ticks use the `TICK_ADVANCES` table so resend
    /// and abort timers genuinely fire; faults are common enough that
    /// most traces exercise loss recovery.
    pub fn arbitrary(seed: u64) -> OpTrace {
        let mut rng = SplitMix64::new(seed);
        let n = rng.range(16, 48);
        let mut ops = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let who = arbitrary_end(&mut rng);
            let op = match rng.below(25) {
                0..=2 => Op::SendMessage { who, len: arbitrary_len(&mut rng) },
                3..=5 => Op::BeginRpc {
                    who,
                    req_len: arbitrary_len(&mut rng),
                    resp_len: arbitrary_len(&mut rng),
                },
                6..=7 => Op::Respond { who },
                8..=12 => Op::Poll { who, count: rng.range(1, 8) as u32 },
                13..=17 => Op::Deliver { to: who, count: rng.range(1, 8) as u32 },
                18..=21 => Op::Tick {
                    who,
                    advance_ns: TICK_ADVANCES[rng.below(TICK_ADVANCES.len() as u64) as usize],
                },
                22 => Op::DropHead { to: who },
                23 => Op::DupHead { to: who },
                _ => {
                    if rng.chance(1, 2) {
                        Op::ReorderHead { to: who, depth: rng.range(1, 4) as u32 }
                    } else {
                        Op::DelayHead { to: who }
                    }
                }
            };
            ops.push(op);
        }
        OpTrace { ops }
    }

    /// The one-line replay encoding: comma-joined op tokens (`ma:5000`,
    /// `ra:300:5000`, `sb`, `pa:3`, `db:2`, `ta:2100000`, `xa`, `ub`,
    /// `oa:3`, `yb`), or `-` for the empty trace. Inverse of
    /// [`parse_ops_line`].
    pub fn to_ops_line(&self) -> String {
        if self.ops.is_empty() {
            return "-".to_string();
        }
        let toks: Vec<String> = self
            .ops
            .iter()
            .map(|op| match *op {
                Op::SendMessage { who, len } => format!("m{}:{len}", who.letter()),
                Op::BeginRpc { who, req_len, resp_len } => {
                    format!("r{}:{req_len}:{resp_len}", who.letter())
                }
                Op::Respond { who } => format!("s{}", who.letter()),
                Op::Poll { who, count } => format!("p{}:{count}", who.letter()),
                Op::Deliver { to, count } => format!("d{}:{count}", to.letter()),
                Op::Tick { who, advance_ns } => format!("t{}:{advance_ns}", who.letter()),
                Op::DropHead { to } => format!("x{}", to.letter()),
                Op::DupHead { to } => format!("u{}", to.letter()),
                Op::ReorderHead { to, depth } => format!("o{}:{depth}", to.letter()),
                Op::DelayHead { to } => format!("y{}", to.letter()),
            })
            .collect();
        toks.join(",")
    }

    /// Candidate simplifications, most aggressive first: drop each
    /// channel-fault op, drop each op of any kind, then halve message
    /// lengths (floored at one byte). Every candidate is itself a legal
    /// trace, so the greedy shrinker can walk the list freely.
    pub fn shrink(&self) -> Vec<OpTrace> {
        let mut out = Vec::new();
        let is_fault = |op: &Op| {
            matches!(
                op,
                Op::DropHead { .. }
                    | Op::DupHead { .. }
                    | Op::ReorderHead { .. }
                    | Op::DelayHead { .. }
            )
        };
        for i in 0..self.ops.len() {
            if is_fault(&self.ops[i]) {
                let mut ops = self.ops.clone();
                ops.remove(i);
                out.push(OpTrace { ops });
            }
        }
        for i in 0..self.ops.len() {
            if !is_fault(&self.ops[i]) {
                let mut ops = self.ops.clone();
                ops.remove(i);
                out.push(OpTrace { ops });
            }
        }
        for i in 0..self.ops.len() {
            let halved = match self.ops[i] {
                Op::SendMessage { who, len } if len > 1 => {
                    Some(Op::SendMessage { who, len: (len / 2).max(1) })
                }
                Op::BeginRpc { who, req_len, resp_len } if req_len > 1 || resp_len > 1 => {
                    Some(Op::BeginRpc {
                        who,
                        req_len: (req_len / 2).max(1),
                        resp_len: (resp_len / 2).max(1),
                    })
                }
                _ => None,
            };
            if let Some(op) = halved {
                let mut ops = self.ops.clone();
                ops[i] = op;
                out.push(OpTrace { ops });
            }
        }
        out
    }
}

fn parse_end(tok: &str, i: usize, c: char) -> Result<End, String> {
    End::from_letter(c).ok_or_else(|| format!("op {i} `{tok}`: endpoint must be `a` or `b`"))
}

fn parse_num(tok: &str, i: usize, part: &str, what: &str) -> Result<u64, String> {
    part.parse().map_err(|_| format!("op {i} `{tok}`: bad {what} `{part}`"))
}

/// Parse a [`OpTrace::to_ops_line`] string back into a trace. Errors
/// name the offending op index and token, mirroring the named-key
/// errors of [`crate::ScenarioSpec::parse_spec_line`].
pub fn parse_ops_line(line: &str) -> Result<OpTrace, String> {
    let line = line.trim();
    if line.is_empty() {
        return Err("empty ops line (use `-` for the empty trace)".to_string());
    }
    if line == "-" {
        return Ok(OpTrace { ops: Vec::new() });
    }
    let mut ops = Vec::new();
    for (i, tok) in line.split(',').enumerate() {
        let tok = tok.trim();
        let mut chars = tok.chars();
        let (kind, end_ch) = match (chars.next(), chars.next()) {
            (Some(k), Some(e)) => (k, e),
            _ => return Err(format!("op {i} `{tok}`: too short")),
        };
        let who = parse_end(tok, i, end_ch)?;
        let rest: &str = chars.as_str();
        let args: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            let rest = rest
                .strip_prefix(':')
                .ok_or_else(|| format!("op {i} `{tok}`: expected `:` before arguments"))?;
            rest.split(':').collect()
        };
        let argc = |want: usize| -> Result<(), String> {
            if args.len() == want {
                Ok(())
            } else {
                Err(format!("op {i} `{tok}`: expected {want} argument(s), got {}", args.len()))
            }
        };
        let op = match kind {
            'm' => {
                argc(1)?;
                Op::SendMessage { who, len: parse_num(tok, i, args[0], "length")?.max(1) }
            }
            'r' => {
                argc(2)?;
                Op::BeginRpc {
                    who,
                    req_len: parse_num(tok, i, args[0], "request length")?.max(1),
                    resp_len: parse_num(tok, i, args[1], "response length")?.max(1),
                }
            }
            's' => {
                argc(0)?;
                Op::Respond { who }
            }
            'p' => {
                argc(1)?;
                Op::Poll { who, count: parse_num(tok, i, args[0], "count")? as u32 }
            }
            'd' => {
                argc(1)?;
                Op::Deliver { to: who, count: parse_num(tok, i, args[0], "count")? as u32 }
            }
            't' => {
                argc(1)?;
                Op::Tick { who, advance_ns: parse_num(tok, i, args[0], "advance")? }
            }
            'x' => {
                argc(0)?;
                Op::DropHead { to: who }
            }
            'u' => {
                argc(0)?;
                Op::DupHead { to: who }
            }
            'o' => {
                argc(1)?;
                Op::ReorderHead { to: who, depth: parse_num(tok, i, args[0], "depth")? as u32 }
            }
            'y' => {
                argc(0)?;
                Op::DelayHead { to: who }
            }
            other => return Err(format!("op {i} `{tok}`: unknown op kind `{other}`")),
        };
        ops.push(op);
    }
    Ok(OpTrace { ops })
}

/// What the model knows about one message or RPC; indexed by its
/// application tag (the harness hands out unique tags).
#[derive(Debug)]
enum Rec {
    Oneway {
        from: End,
        key: MsgKey,
        len: u64,
        delivered: u32,
        out_aborted: bool,
    },
    Rpc {
        client: End,
        seq: u64,
        req_len: u64,
        resp_len: u64,
        completed: bool,
        aborted: bool,
        requests_arrived: u32,
    },
}

/// The whole harness: two real endpoints, the adversarial channel
/// between them, and the reference model.
struct Harness {
    eps: [HomaEndpoint; 2],
    /// `queues[i]` holds `(from, packet)` pairs headed to endpoint `i`.
    queues: [VecDeque<(PeerId, HomaPacket)>; 2],
    now: u64,
    records: Vec<Rec>,
    oneway_by_key: HashMap<MsgKey, usize>,
    rpc_by_seq: HashMap<(usize, u64), usize>,
    /// Requests delivered to an endpoint and not yet answered:
    /// `(client peer, rpc seq, tag)`.
    pending_requests: [VecDeque<(PeerId, u64, usize)>; 2],
    /// Keys for which the channel (or a retransmission) made duplicate
    /// bytes possible: dup-faulted DATA, or any `retransmit` DATA seen.
    redundant: HashSet<MsgKey>,
    /// Keys that lost a DATA packet to a channel drop.
    dropped: HashSet<MsgKey>,
    /// Keys whose receiver gave up on the inbound mid-message (the
    /// sender looked silent). For a one-way this is a legal terminal
    /// state: fire-and-forget messages carry no delivery guarantee once
    /// the receiver aborts.
    inbound_aborted: HashSet<MsgKey>,
    /// Keys whose delivery happened while control packets were still
    /// queued: a pre-delivery grant may surface from the queue later, so
    /// the grant-after-delivery check must give these amnesty.
    grant_amnesty: HashSet<MsgKey>,
    last_delivered_bytes: [u64; 2],
}

impl Harness {
    fn new() -> Harness {
        let cfg = HomaConfig::default();
        Harness {
            eps: [
                HomaEndpoint::new(End::A.peer(), cfg.clone()),
                HomaEndpoint::new(End::B.peer(), cfg),
            ],
            queues: [VecDeque::new(), VecDeque::new()],
            now: 0,
            records: Vec::new(),
            oneway_by_key: HashMap::new(),
            rpc_by_seq: HashMap::new(),
            pending_requests: [VecDeque::new(), VecDeque::new()],
            redundant: HashSet::new(),
            dropped: HashSet::new(),
            inbound_aborted: HashSet::new(),
            grant_amnesty: HashSet::new(),
            last_delivered_bytes: [0, 0],
        }
    }

    /// The model's expected length for any key it has ever created.
    fn expected_len(&self, key: MsgKey) -> Option<u64> {
        match key.dir {
            Dir::Oneway => self.oneway_by_key.get(&key).map(|&t| match self.records[t] {
                Rec::Oneway { len, .. } => len,
                Rec::Rpc { .. } => unreachable!("oneway index points at rpc"),
            }),
            Dir::Request | Dir::Response => {
                let client = End::from_letter((b'a' + key.origin.0 as u8) as char)?;
                let &t = self.rpc_by_seq.get(&(client.idx(), key.seq))?;
                match self.records[t] {
                    Rec::Rpc { req_len, resp_len, .. } => {
                        Some(if key.dir == Dir::Request { req_len } else { resp_len })
                    }
                    Rec::Oneway { .. } => unreachable!("rpc index points at oneway"),
                }
            }
        }
    }

    /// True once `key`'s payload has been delivered (one-way delivered,
    /// request executed, or response completed) — after which new grants
    /// are only legal if duplicate bytes exist for the key.
    fn key_delivered(&self, key: MsgKey) -> bool {
        match key.dir {
            Dir::Oneway => self.oneway_by_key.get(&key).is_some_and(
                |&t| matches!(self.records[t], Rec::Oneway { delivered, .. } if delivered > 0),
            ),
            Dir::Request | Dir::Response => {
                let Some(client) = End::from_letter((b'a' + key.origin.0 as u8) as char) else {
                    return false;
                };
                let Some(&t) = self.rpc_by_seq.get(&(client.idx(), key.seq)) else {
                    return false;
                };
                match &self.records[t] {
                    Rec::Rpc { requests_arrived, completed, .. } => {
                        if key.dir == Dir::Request {
                            *requests_arrived > 0
                        } else {
                            *completed
                        }
                    }
                    Rec::Oneway { .. } => false,
                }
            }
        }
    }

    /// Inspect a packet an endpoint just handed to the channel.
    fn observe_outgoing(&mut self, from: End, pkt: &HomaPacket) -> Result<(), String> {
        match pkt {
            HomaPacket::Data(h) => {
                let Some(len) = self.expected_len(h.key) else {
                    return Err(format!("{from:?} sent DATA for unknown key {:?}", h.key));
                };
                if h.msg_len != len {
                    return Err(format!(
                        "DATA for {:?} advertises msg_len {} but the model says {len}",
                        h.key, h.msg_len
                    ));
                }
                if h.offset + h.payload as u64 > len {
                    return Err(format!(
                        "DATA for {:?} spans {}..{} past its length {len}",
                        h.key,
                        h.offset,
                        h.offset + h.payload as u64
                    ));
                }
                if h.retransmit {
                    self.redundant.insert(h.key);
                }
            }
            HomaPacket::Grant(g) => {
                if self.key_delivered(g.key)
                    && !self.redundant.contains(&g.key)
                    && !self.grant_amnesty.contains(&g.key)
                {
                    return Err(format!(
                        "grant for {:?} after delivery with no duplicate bytes in flight",
                        g.key
                    ));
                }
                if let Some(len) = self.expected_len(g.key) {
                    if g.offset > len {
                        return Err(format!(
                            "grant for {:?} extends credit to {} past length {len}",
                            g.key, g.offset
                        ));
                    }
                }
            }
            HomaPacket::Resend(_) | HomaPacket::Busy(_) | HomaPacket::Cutoffs(_) => {}
        }
        Ok(())
    }

    /// Drain and model-check one endpoint's application events.
    fn process_events(&mut self, end: End) -> Result<(), String> {
        let events = self.eps[end.idx()].take_events();
        let stale_ctrl = self.eps[end.idx()].pending_ctrl() > 0;
        for ev in events {
            match ev {
                HomaEvent::MessageDelivered { src, seq, len, tag } => {
                    let key = MsgKey { origin: src, seq, dir: Dir::Oneway };
                    if stale_ctrl {
                        self.grant_amnesty.insert(key);
                    }
                    let Some(&t) = self.oneway_by_key.get(&key) else {
                        return Err(format!("{end:?} delivered unknown one-way {key:?}"));
                    };
                    let redundant = self.redundant.contains(&key);
                    let Rec::Oneway { from, len: mlen, delivered, .. } = &mut self.records[t]
                    else {
                        unreachable!("oneway index points at rpc");
                    };
                    if tag != t as u64 {
                        return Err(format!("one-way {key:?} delivered with tag {tag}, want {t}"));
                    }
                    if *mlen != len {
                        return Err(format!(
                            "one-way {key:?} delivered {len} bytes, model says {mlen}"
                        ));
                    }
                    if from.other() != end {
                        return Err(format!("one-way {key:?} delivered to its own sender"));
                    }
                    *delivered += 1;
                    if *delivered > 1 && !redundant {
                        return Err(format!(
                            "one-way {key:?} delivered {delivered} times with no duplicate bytes \
                             in flight"
                        ));
                    }
                }
                HomaEvent::RequestArrived { client, rpc_seq, len, tag } => {
                    let t = tag as usize;
                    let req_key = MsgKey { origin: client, seq: rpc_seq, dir: Dir::Request };
                    if stale_ctrl {
                        self.grant_amnesty.insert(req_key);
                    }
                    let redundant = self.redundant.contains(&req_key);
                    let Some(Rec::Rpc { client: c, seq, req_len, requests_arrived, .. }) =
                        self.records.get_mut(t)
                    else {
                        return Err(format!("{end:?} got request with unknown tag {tag}"));
                    };
                    if c.peer() != client || *seq != rpc_seq || c.other() != end {
                        return Err(format!(
                            "request tag {tag} arrived from {client:?} seq {rpc_seq}, model says \
                             {c:?} seq {seq}"
                        ));
                    }
                    if *req_len != len {
                        return Err(format!(
                            "request tag {tag} arrived with {len} bytes, model says {req_len}"
                        ));
                    }
                    *requests_arrived += 1;
                    if *requests_arrived > 1 && !redundant {
                        return Err(format!(
                            "request tag {tag} executed {requests_arrived} times with no \
                             duplicate bytes in flight"
                        ));
                    }
                    self.pending_requests[end.idx()].push_back((client, rpc_seq, t));
                }
                HomaEvent::RpcCompleted { server, rpc_seq, tag, resp_len } => {
                    let t = tag as usize;
                    if stale_ctrl {
                        self.grant_amnesty.insert(MsgKey {
                            origin: end.peer(),
                            seq: rpc_seq,
                            dir: Dir::Response,
                        });
                    }
                    let Some(Rec::Rpc { client, seq, resp_len: want, completed, aborted, .. }) =
                        self.records.get_mut(t)
                    else {
                        return Err(format!("{end:?} completed rpc with unknown tag {tag}"));
                    };
                    if *client != end || *seq != rpc_seq || client.other().peer() != server {
                        return Err(format!(
                            "rpc tag {tag} completed at {end:?} from {server:?} seq {rpc_seq}, \
                             model says client {client:?} seq {seq}"
                        ));
                    }
                    if *completed {
                        return Err(format!("rpc tag {tag} completed twice"));
                    }
                    if *aborted {
                        return Err(format!("rpc tag {tag} completed after aborting"));
                    }
                    if *want != resp_len {
                        return Err(format!(
                            "rpc tag {tag} completed with {resp_len} response bytes, the \
                             application answered with {want}"
                        ));
                    }
                    *completed = true;
                }
                HomaEvent::RpcAborted { server, tag } => {
                    let t = tag as usize;
                    let Some(Rec::Rpc { client, completed, aborted, .. }) = self.records.get_mut(t)
                    else {
                        return Err(format!("{end:?} aborted rpc with unknown tag {tag}"));
                    };
                    if *client != end || client.other().peer() != server {
                        return Err(format!("rpc tag {tag} aborted at the wrong endpoint"));
                    }
                    if *completed {
                        return Err(format!("rpc tag {tag} aborted after completing"));
                    }
                    if *aborted {
                        return Err(format!("rpc tag {tag} aborted twice"));
                    }
                    *aborted = true;
                }
                HomaEvent::OutboundAborted { dst, tag } => {
                    let t = tag as usize;
                    match self.records.get_mut(t) {
                        Some(Rec::Oneway { from, out_aborted, .. }) => {
                            if *from != end || from.other().peer() != dst {
                                return Err(format!(
                                    "one-way tag {tag} abandoned at the wrong endpoint"
                                ));
                            }
                            if *out_aborted {
                                return Err(format!("one-way tag {tag} abandoned twice"));
                            }
                            *out_aborted = true;
                        }
                        // A response the server gave up on: legal whenever
                        // the client side stopped granting; no bookkeeping
                        // beyond existence (the RPC outcome is tracked at
                        // the client).
                        Some(Rec::Rpc { client, .. }) => {
                            if client.other() != end {
                                return Err(format!(
                                    "response tag {tag} abandoned by the client side"
                                ));
                            }
                        }
                        None => {
                            return Err(format!("{end:?} abandoned unknown tag {tag}"));
                        }
                    }
                }
                // A one-way or request sender went silent mid-message
                // and the receiver gave up. Record the key: at
                // quiescence this is a legal terminal state for a
                // one-way (fire-and-forget delivery is forfeit once the
                // receiver aborts, e.g. when a packet sat in the
                // channel past the sender's linger window).
                HomaEvent::InboundAborted { key, .. } => {
                    if key.dir != Dir::Response && key.origin == end.peer() {
                        return Err(format!(
                            "{end:?} reported an inbound abort for a message it sent ({key:?})"
                        ));
                    }
                    self.inbound_aborted.insert(key);
                }
            }
        }
        Ok(())
    }

    /// Snapshot + bookkeeping invariants, checked after every op.
    fn check_invariants(&mut self) -> Result<(), String> {
        for end in [End::A, End::B] {
            let ep = &self.eps[end.idx()];
            let delivered = ep.delivered_bytes();
            if delivered < self.last_delivered_bytes[end.idx()] {
                return Err(format!("{end:?} delivered_bytes went backwards"));
            }
            self.last_delivered_bytes[end.idx()] = delivered;

            for (key, len, received, granted, _) in ep.inbound_snapshot() {
                if granted > len {
                    return Err(format!("{end:?} inbound {key:?} granted {granted} > len {len}"));
                }
                if received > len {
                    return Err(format!("{end:?} inbound {key:?} received {received} > len {len}"));
                }
                match self.expected_len(key) {
                    Some(want) if want == len => {}
                    Some(want) => {
                        return Err(format!(
                            "{end:?} inbound {key:?} has len {len}, model says {want}"
                        ));
                    }
                    None => return Err(format!("{end:?} inbound state for unknown key {key:?}")),
                }
            }
            for (key, len, sent, granted, _) in ep.outbound_snapshot() {
                if granted > len {
                    return Err(format!("{end:?} outbound {key:?} granted {granted} > len {len}"));
                }
                if sent > len {
                    return Err(format!("{end:?} outbound {key:?} sent {sent} > len {len}"));
                }
                match self.expected_len(key) {
                    Some(want) if want == len => {}
                    Some(want) => {
                        return Err(format!(
                            "{end:?} outbound {key:?} has len {len}, model says {want}"
                        ));
                    }
                    None => return Err(format!("{end:?} outbound state for unknown key {key:?}")),
                }
            }

            // Client bookkeeping: the endpoint's outstanding set must be
            // exactly the model's open RPCs for this end.
            let mut want: Vec<u64> = self
                .records
                .iter()
                .filter_map(|r| match r {
                    Rec::Rpc { client, seq, completed, aborted, .. }
                        if *client == end && !completed && !aborted =>
                    {
                        Some(*seq)
                    }
                    _ => None,
                })
                .collect();
            want.sort_unstable();
            let got = ep.client_rpc_seqs();
            if got != want {
                return Err(format!(
                    "{end:?} outstanding rpc seqs {got:?} diverge from the model's {want:?}"
                ));
            }
            if ep.outstanding_rpcs() != want.len() {
                return Err(format!(
                    "{end:?} outstanding_rpcs() {} != open set {}",
                    ep.outstanding_rpcs(),
                    want.len()
                ));
            }
        }
        Ok(())
    }

    fn respond_oldest(&mut self, who: End) {
        if let Some((client, seq, tag)) = self.pending_requests[who.idx()].pop_front() {
            let resp_len = match self.records[tag] {
                Rec::Rpc { resp_len, .. } => resp_len,
                Rec::Oneway { .. } => unreachable!("pending request points at oneway"),
            };
            self.eps[who.idx()].send_response(self.now, client, seq, resp_len, tag as u64);
        }
    }

    fn poll_onto_channel(&mut self, who: End, count: u32) -> Result<(), String> {
        for _ in 0..count {
            let Some((dst, pkt)) = self.eps[who.idx()].poll_transmit(self.now) else {
                break;
            };
            if dst != who.other().peer() {
                return Err(format!("{who:?} addressed a packet to {dst:?}"));
            }
            self.observe_outgoing(who, &pkt)?;
            self.queues[who.other().idx()].push_back((who.peer(), pkt));
        }
        Ok(())
    }

    fn deliver(&mut self, to: End, count: u32) {
        for _ in 0..count {
            let Some((from, pkt)) = self.queues[to.idx()].pop_front() else {
                break;
            };
            self.eps[to.idx()].on_packet(self.now, from, pkt);
        }
    }

    fn apply(&mut self, op: Op) -> Result<(), String> {
        match op {
            Op::SendMessage { who, len } => {
                let len = len.max(1);
                let tag = self.records.len();
                let seq =
                    self.eps[who.idx()].send_message(self.now, who.other().peer(), len, tag as u64);
                let key = MsgKey { origin: who.peer(), seq, dir: Dir::Oneway };
                self.records.push(Rec::Oneway {
                    from: who,
                    key,
                    len,
                    delivered: 0,
                    out_aborted: false,
                });
                self.oneway_by_key.insert(key, tag);
            }
            Op::BeginRpc { who, req_len, resp_len } => {
                let (req_len, resp_len) = (req_len.max(1), resp_len.max(1));
                let tag = self.records.len();
                let seq = self.eps[who.idx()].begin_rpc(
                    self.now,
                    who.other().peer(),
                    req_len,
                    tag as u64,
                );
                self.records.push(Rec::Rpc {
                    client: who,
                    seq,
                    req_len,
                    resp_len,
                    completed: false,
                    aborted: false,
                    requests_arrived: 0,
                });
                self.rpc_by_seq.insert((who.idx(), seq), tag);
            }
            Op::Respond { who } => self.respond_oldest(who),
            Op::Poll { who, count } => self.poll_onto_channel(who, count)?,
            Op::Deliver { to, count } => self.deliver(to, count),
            Op::Tick { who, advance_ns } => {
                self.now += advance_ns;
                self.eps[who.idx()].timer_tick(self.now);
            }
            Op::DropHead { to } => {
                if let Some((_, HomaPacket::Data(h))) = self.queues[to.idx()].pop_front() {
                    self.dropped.insert(h.key);
                }
            }
            Op::DupHead { to } => {
                if let Some(front) = self.queues[to.idx()].front().cloned() {
                    if let HomaPacket::Data(h) = &front.1 {
                        self.redundant.insert(h.key);
                    }
                    self.queues[to.idx()].push_back(front);
                }
            }
            Op::ReorderHead { to, depth } => {
                let q = &mut self.queues[to.idx()];
                if q.len() >= 2 {
                    let j = (depth as usize).clamp(1, q.len() - 1);
                    q.swap(0, j);
                }
            }
            Op::DelayHead { to } => {
                let q = &mut self.queues[to.idx()];
                if let Some(front) = q.pop_front() {
                    q.push_back(front);
                }
            }
        }
        self.process_events(End::A)?;
        self.process_events(End::B)?;
        self.check_invariants()
    }

    /// Fault-free drain to quiescence: pump every packet across, answer
    /// every delivered request, and tick time forward so resend and
    /// abort timers resolve whatever the adversarial phase left behind.
    fn drain(&mut self) -> Result<(), String> {
        let interval = self.eps[0].config().resend_interval_ns;
        for round in 0..48 {
            loop {
                let mut progressed = false;
                for end in [End::A, End::B] {
                    let before = self.queues[end.other().idx()].len();
                    self.poll_onto_channel(end, u32::MAX)?;
                    progressed |= self.queues[end.other().idx()].len() != before;
                }
                for end in [End::A, End::B] {
                    progressed |= !self.queues[end.idx()].is_empty();
                    self.deliver(end, u32::MAX);
                }
                for end in [End::A, End::B] {
                    progressed |= !self.pending_requests[end.idx()].is_empty();
                    while !self.pending_requests[end.idx()].is_empty() {
                        self.respond_oldest(end);
                    }
                }
                self.process_events(End::A)?;
                self.process_events(End::B)?;
                self.check_invariants()?;
                if !progressed {
                    break;
                }
            }
            // Past the resend interval (and on the last rounds, far past
            // every linger window) so sweeps fire.
            self.now += if round >= 40 { 50 * interval } else { interval + 100_000 };
            self.eps[0].timer_tick(self.now);
            self.eps[1].timer_tick(self.now);
            self.process_events(End::A)?;
            self.process_events(End::B)?;
            self.check_invariants()?;
        }
        self.check_quiescent()
    }

    fn check_quiescent(&self) -> Result<(), String> {
        for end in [End::A, End::B] {
            let ep = &self.eps[end.idx()];
            if ep.has_pending_tx() {
                return Err(format!("{end:?} still has pending packets at quiescence"));
            }
            if ep.inbound_count() != 0 {
                return Err(format!(
                    "{end:?} holds {} incomplete inbound messages at quiescence: {:?}",
                    ep.inbound_count(),
                    ep.inbound_snapshot()
                ));
            }
            if ep.outbound_count() != 0 {
                return Err(format!(
                    "{end:?} holds {} outbound messages at quiescence: {:?}",
                    ep.outbound_count(),
                    ep.outbound_snapshot()
                ));
            }
            if ep.outstanding_rpcs() != 0 {
                return Err(format!(
                    "{end:?} still has {} outstanding rpcs at quiescence (seqs {:?})",
                    ep.outstanding_rpcs(),
                    ep.client_rpc_seqs()
                ));
            }
            if ep.server_rpcs_pending() != 0 {
                return Err(format!(
                    "{end:?} still has {} unanswered requests after the drain responded to \
                     everything",
                    ep.server_rpcs_pending()
                ));
            }
        }
        // Every message reached a terminal state the channel can explain.
        for (t, rec) in self.records.iter().enumerate() {
            match rec {
                Rec::Oneway { key, delivered, out_aborted, .. } => {
                    if *delivered == 0
                        && !out_aborted
                        && !self.dropped.contains(key)
                        && !self.inbound_aborted.contains(key)
                    {
                        return Err(format!(
                            "one-way tag {t} ({key:?}) vanished: never delivered, the sender \
                             never abandoned it, the receiver never aborted it, and the channel \
                             dropped none of its packets"
                        ));
                    }
                }
                Rec::Rpc { seq, completed, aborted, .. } => {
                    if !completed && !aborted {
                        return Err(format!(
                            "rpc tag {t} (seq {seq}) never completed and never aborted"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Run a trace through the pair-plus-model harness: every op is applied,
/// invariants are checked after each, and the run ends with a fault-free
/// drain to quiescence. `Err` carries the first divergence.
pub fn check_ops(trace: &OpTrace) -> Result<(), String> {
    let mut h = Harness::new();
    for (i, &op) in trace.ops.iter().enumerate() {
        h.apply(op).map_err(|e| format!("after op {i} ({op:?}): {e}"))?;
    }
    h.drain().map_err(|e| format!("at quiescence: {e}"))
}

/// [`check_ops`], but with endpoint panics converted into `Err` so the
/// shrinker can minimize panicking traces the same way as divergences.
pub fn check_ops_caught(trace: &OpTrace) -> Result<(), String> {
    let t = trace.clone();
    match std::panic::catch_unwind(move || check_ops(&t)) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(format!("endpoint panicked: {msg}"))
        }
    }
}

/// Greedily shrink `trace` while `fails` keeps returning true; the
/// op-trace instantiation of
/// [`shrink_to_minimal_with`].
pub fn shrink_ops_to_minimal(trace: &OpTrace, fails: impl FnMut(&OpTrace) -> bool) -> OpTrace {
    shrink_to_minimal_with(trace, OpTrace::shrink, fails)
}

/// Total messages delivered across both endpoints after running `trace`
/// (ops plus the fault-free drain), with model verdicts ignored: a
/// deterministic run-outcome probe, used to exercise the shrinker
/// against predicates about what a trace *does* rather than how it is
/// shaped.
pub fn trace_deliveries(trace: &OpTrace) -> u64 {
    let mut h = Harness::new();
    for &op in &trace.ops {
        let _ = h.apply(op);
    }
    let _ = h.drain();
    h.eps[0].delivered_msgs() + h.eps[1].delivered_msgs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arbitrary_is_deterministic_and_bounded() {
        for seed in 0..300 {
            let a = OpTrace::arbitrary(seed);
            let b = OpTrace::arbitrary(seed);
            assert_eq!(a, b, "seed {seed} not deterministic");
            assert!((16..=48).contains(&a.ops.len()), "seed {seed}: {} ops", a.ops.len());
        }
    }

    #[test]
    fn ops_lines_round_trip() {
        for seed in 0..300 {
            let trace = OpTrace::arbitrary(seed);
            let line = trace.to_ops_line();
            let back = parse_ops_line(&line)
                .unwrap_or_else(|e| panic!("seed {seed}: `{line}` failed to parse: {e}"));
            assert_eq!(back, trace, "seed {seed} diverged via `{line}`");
        }
        assert_eq!(parse_ops_line("-").unwrap(), OpTrace { ops: Vec::new() });
        assert_eq!(OpTrace { ops: Vec::new() }.to_ops_line(), "-");
    }

    #[test]
    fn ops_line_errors_name_the_op() {
        for bad in ["za", "m", "ma", "ma:xx", "ra:5", "pa:1:2", "mq:5", "ma:5,,", "oa"] {
            let err = parse_ops_line(bad).expect_err(&format!("`{bad}` should not parse"));
            assert!(err.contains("op "), "`{bad}` error lacks op index: {err}");
            assert!(err.contains('`'), "`{bad}` error lacks a quoted token: {err}");
        }
    }

    #[test]
    fn generator_covers_every_op_kind() {
        let mut seen = [false; 10];
        for seed in 0..200 {
            for op in OpTrace::arbitrary(seed).ops {
                let i = match op {
                    Op::SendMessage { .. } => 0,
                    Op::BeginRpc { .. } => 1,
                    Op::Respond { .. } => 2,
                    Op::Poll { .. } => 3,
                    Op::Deliver { .. } => 4,
                    Op::Tick { .. } => 5,
                    Op::DropHead { .. } => 6,
                    Op::DupHead { .. } => 7,
                    Op::ReorderHead { .. } => 8,
                    Op::DelayHead { .. } => 9,
                };
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some op kind never drawn: {seen:?}");
    }

    /// A small deterministic smoke run: the model accepts clean seeds.
    #[test]
    fn model_accepts_early_seeds() {
        for seed in 0..50 {
            let trace = OpTrace::arbitrary(seed);
            if let Err(e) = check_ops(&trace) {
                panic!("seed {seed} (`{}`) diverged: {e}", trace.to_ops_line());
            }
        }
    }

    /// A hand-written lossy exchange: drop the whole response, let the
    /// RPC recover through §3.7/§3.8 re-execution during the drain.
    #[test]
    fn model_accepts_handwritten_loss_trace() {
        let line = "ra:200:30000,pa:8,da:8,db:8,sb,pb:4,xb,xb,xb,xb,ta:2100000,pa:4";
        let trace = parse_ops_line(line).unwrap();
        check_ops(&trace).unwrap_or_else(|e| panic!("`{line}` diverged: {e}"));
    }

    #[test]
    fn shrink_candidates_stay_parseable() {
        for seed in 0..50 {
            let trace = OpTrace::arbitrary(seed);
            for cand in trace.shrink() {
                let line = cand.to_ops_line();
                assert_eq!(parse_ops_line(&line).unwrap(), cand, "seed {seed} via `{line}`");
            }
        }
    }
}
