//! Grammar fuzzing for the spec-line parser.
//!
//! The round-trip tests only ever feed [`ScenarioSpec::parse_spec_line`]
//! lines that [`ScenarioSpec::to_spec_line`] produced; this module feeds
//! it *mutated* lines — the kind a human pastes into a terminal after an
//! editor, a CI log, or a wrapping email has chewed on them. Each mutant
//! starts from a valid line drawn by [`ScenarioSpec::arbitrary`] and
//! applies one or two seeded mutations: field deletion or duplication,
//! value bit-flips, truncation, separator injection, unknown keys,
//! numeric overflow strings, and field reordering.
//!
//! The contract under test ([`check_mutant_line`]): the parser never
//! panics, never silently accepts garbage it cannot faithfully
//! re-format, and every rejection is a *named-key* error (it contains
//! ``field `…` `` pointing at the offending key or token). Mutants that
//! remain legal — a deleted defaultable field, a duplicated key where
//! last-wins, reordered fields — must re-format to a fixed point:
//! `format ∘ parse ∘ format = format`.

use super::{shrink_to_minimal_with, SplitMix64};
use crate::scenario::ScenarioSpec;

/// One seeded mutation applied to `line`.
fn apply_mutation(rng: &mut SplitMix64, line: &str) -> String {
    let join = |fields: Vec<String>| fields.join(" ");
    let fields = || -> Vec<String> { line.split_whitespace().map(str::to_string).collect() };
    match rng.below(8) {
        // Delete a field: required fields missing, defaultable fields legal.
        0 => {
            let mut f = fields();
            if !f.is_empty() {
                let i = rng.below(f.len() as u64) as usize;
                f.remove(i);
            }
            join(f)
        }
        // Duplicate a field somewhere else in the line (last one wins on
        // parse, so this must stay accepted and re-format canonically).
        1 => {
            let mut f = fields();
            if !f.is_empty() {
                let i = rng.below(f.len() as u64) as usize;
                let dup = f[i].clone();
                let j = rng.below(f.len() as u64 + 1) as usize;
                f.insert(j, dup);
            }
            join(f)
        }
        // Flip one bit of one byte (repaired lossily if it breaks UTF-8).
        2 => {
            let mut bytes = line.as_bytes().to_vec();
            if !bytes.is_empty() {
                let i = rng.below(bytes.len() as u64) as usize;
                bytes[i] ^= 1 << rng.below(8);
            }
            String::from_utf8_lossy(&bytes).into_owned()
        }
        // Truncate at a random (char-safe) point.
        3 => {
            let mut cut = rng.below(line.len() as u64 + 1) as usize;
            while cut < line.len() && !line.is_char_boundary(cut) {
                cut -= 1;
            }
            line[..cut].to_string()
        }
        // Inject a separator where it does not belong.
        4 => {
            let mut bytes = line.as_bytes().to_vec();
            if !bytes.is_empty() {
                let i = rng.below(bytes.len() as u64) as usize;
                bytes[i] = b" =:,"[rng.below(4) as usize];
            }
            String::from_utf8_lossy(&bytes).into_owned()
        }
        // Unknown keys: append a made-up field, or misspell a real key.
        5 => {
            if rng.chance(1, 2) {
                format!("{line} zz={}", rng.below(1_000))
            } else {
                let mut f = fields();
                if !f.is_empty() {
                    let i = rng.below(f.len() as u64) as usize;
                    f[i] = format!("q{}", f[i]);
                }
                join(f)
            }
        }
        // Numeric overflow strings in a random field's value.
        6 => {
            let mut f = fields();
            if !f.is_empty() {
                let i = rng.below(f.len() as u64) as usize;
                if let Some((key, _)) = f[i].split_once('=') {
                    let huge = ["18446744073709551616", "999999999999999999999999999", "1e999"]
                        [rng.below(3) as usize];
                    f[i] = format!("{key}={huge}");
                }
            }
            join(f)
        }
        // Reorder two fields (field order must not matter).
        _ => {
            let mut f = fields();
            if f.len() >= 2 {
                let i = rng.below(f.len() as u64) as usize;
                let j = rng.below(f.len() as u64) as usize;
                f.swap(i, j);
            }
            join(f)
        }
    }
}

/// A seeded mutant spec line: a valid [`ScenarioSpec::arbitrary`] line
/// with one or two mutations applied. Deterministic in `seed`.
pub fn mutate_spec_line(seed: u64) -> String {
    let mut rng = SplitMix64::new(seed);
    let mut line = ScenarioSpec::arbitrary(rng.next_u64()).to_spec_line();
    for _ in 0..rng.range(1, 2) {
        line = apply_mutation(&mut rng, &line);
    }
    line
}

/// The parser contract for one (possibly mangled) line: a rejection
/// must name the offending key (``field `…` `` appears in the error),
/// and an accepted line must re-format to a fixed point.
pub fn check_mutant_line(line: &str) -> Result<(), String> {
    match ScenarioSpec::parse_spec_line(line) {
        Err(e) => {
            if e.contains("field `") {
                Ok(())
            } else {
                Err(format!("rejection does not name a field: {e}"))
            }
        }
        Ok(spec) => {
            let canon = spec.to_spec_line();
            let again = ScenarioSpec::parse_spec_line(&canon).map_err(|e| {
                format!("accepted mutant re-formats to an unparseable line `{canon}`: {e}")
            })?;
            let canon2 = again.to_spec_line();
            if canon2 != canon {
                return Err(format!("re-formatting is not a fixed point: `{canon}` vs `{canon2}`"));
            }
            Ok(())
        }
    }
}

/// [`check_mutant_line`] with parser panics converted into `Err`, so
/// "never panics" is checkable (and shrinkable) like any other failure.
pub fn check_mutant_line_caught(line: &str) -> Result<(), String> {
    let owned = line.to_string();
    match std::panic::catch_unwind(move || check_mutant_line(&owned)) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(format!("parser panicked: {msg}"))
        }
    }
}

/// Candidate simplifications of a failing line: drop each field, then
/// drop each character. Every candidate is strictly shorter, so greedy
/// shrinking always terminates.
pub fn shrink_line(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let fields: Vec<&str> = line.split_whitespace().collect();
    if fields.len() > 1 {
        for i in 0..fields.len() {
            let mut f = fields.clone();
            f.remove(i);
            out.push(f.join(" "));
        }
    }
    for (i, c) in line.char_indices() {
        let mut s = String::with_capacity(line.len() - c.len_utf8());
        s.push_str(&line[..i]);
        s.push_str(&line[i + c.len_utf8()..]);
        out.push(s);
    }
    out
}

/// Greedily shrink a failing line while `fails` keeps returning true;
/// the line instantiation of
/// [`shrink_to_minimal_with`].
pub fn shrink_line_to_minimal(line: &str, fails: impl FnMut(&String) -> bool) -> String {
    shrink_to_minimal_with(&line.to_string(), |l| shrink_line(l), fails)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutants_are_deterministic() {
        for seed in 0..100 {
            assert_eq!(mutate_spec_line(seed), mutate_spec_line(seed), "seed {seed}");
        }
    }

    #[test]
    fn mutation_classes_all_reachable() {
        // Across a modest seed range we must see both rejected and
        // accepted mutants, and at least one mutant differing from its
        // base line.
        let mut rejected = 0;
        let mut accepted = 0;
        for seed in 0..300 {
            let line = mutate_spec_line(seed);
            match ScenarioSpec::parse_spec_line(&line) {
                Ok(_) => accepted += 1,
                Err(_) => rejected += 1,
            }
        }
        assert!(rejected > 60, "only {rejected}/300 mutants rejected");
        assert!(accepted > 30, "only {accepted}/300 mutants accepted");
    }

    #[test]
    fn parser_contract_holds_on_early_seeds() {
        for seed in 0..300 {
            let line = mutate_spec_line(seed);
            if let Err(e) = check_mutant_line_caught(&line) {
                panic!("seed {seed} (`{line}`) broke the parser contract: {e}");
            }
        }
    }

    #[test]
    fn hand_written_rejections_name_their_field() {
        for bad in [
            "",
            "name=x",
            "zz=1",
            "name=x fabric=ss4 wl=w4 load=0.5 msgs=10 seed=1 color=red",
            "name=x fabric=ss4 wl=w9 load=0.5 msgs=10 seed=1",
            "name=x fabric=ss4 wl=w4 load=0.5 msgs=18446744073709551616 seed=1",
            "notafield",
            // Shrunk fuzzer find (seed 68908): used to panic in
            // `VictimSpec::new` on a self-addressed victim flow.
            "traffic=uniform+victim:6:6:4:3",
        ] {
            let err = ScenarioSpec::parse_spec_line(bad).expect_err("must reject");
            assert!(err.contains("field `"), "`{bad}`: unnamed rejection: {err}");
        }
    }

    #[test]
    fn shrink_line_candidates_are_strictly_shorter() {
        let line = mutate_spec_line(7);
        for cand in shrink_line(&line) {
            assert!(cand.len() < line.len(), "`{cand}` not shorter than `{line}`");
        }
    }

    #[test]
    fn shrinks_a_failing_line_to_a_local_minimum() {
        // Predicate: the parser rejects the line (any line with an
        // unparseable token keeps failing as we strip the rest away).
        let line = "name=x fabric=ss4 wl=w4 load=0.5 msgs=10 seed=1 zz=1";
        let fails = |l: &String| ScenarioSpec::parse_spec_line(l).is_err();
        let minimal = shrink_line_to_minimal(line, fails);
        assert!(
            ScenarioSpec::parse_spec_line(&minimal).is_err(),
            "shrunk line `{minimal}` no longer fails"
        );
        for cand in shrink_line(&minimal) {
            assert!(
                ScenarioSpec::parse_spec_line(&cand).is_ok(),
                "`{minimal}` not minimal: `{cand}` still fails"
            );
        }
        // The empty line is rejected (missing required fields), so the
        // minimum here is literally empty.
        assert_eq!(minimal, "");
    }
}
