//! Generic experiment drivers.
//!
//! Three experiment shapes cover every figure in the paper, all driven
//! through [`crate::ScenarioSpec`] (the sole public entry point — see
//! [`ScenarioSpec::run_oneway`](crate::ScenarioSpec::run_oneway) and
//! friends):
//!
//! * one-way — the §5.2 simulation setup: all-to-all one-way messages
//!   with Poisson arrivals at a target network load
//!   (Figures 12–21, Table 1).
//! * RPC echo — the §5.1 implementation setup: clients issue echo RPCs
//!   to servers (Figures 8–9).
//! * incast — Figure 10: one client, many concurrent RPCs with 10 KB
//!   responses.
//!
//! This module owns the option/result types and the run loops; the
//! fabric, workload, load, seed, engine, traffic pattern and fault
//! schedule all come from the spec, so every run is replayable from the
//! spec's one-line text form (`ScenarioSpec::to_spec_line`).

use crate::scenario::ScenarioSpec;
use crate::slowdown::{MsgRecord, SlowdownSketch};
use homa_sim::{
    AppEvent, EngineProfile, EngineStats, FlightRecorder, HostId, Network, PacketMeta, PathClass,
    QueueDiscipline, RunStats, SimDuration, SimTime, TraceRecord, Transport,
};
use homa_workloads::{LoadPlan, PoissonArrivals, TrafficMatrix};
use std::collections::HashMap;

/// Per-packet constants used for unloaded-latency denominators and load
/// planning; all transports in this repository share them (see
/// `homa_baselines::common`).
pub const PAYLOAD: u64 = 1_400;
/// Wire overhead per data packet.
pub const OVERHEAD: u64 = 60;
/// Wire size of control packets.
pub const CTRL: u64 = 40;

/// Options for [`ScenarioSpec::run_oneway`]: the measurement knobs that
/// are *not* part of what a scenario is (those — fabric, workload, load,
/// traffic, faults — live on the spec itself).
#[derive(Debug, Clone)]
pub struct OnewayOpts {
    /// Sample the Figure 16 wasted-bandwidth probe.
    pub sample_wasted: bool,
    /// Probe cadence.
    pub sample_interval: SimDuration,
    /// Ask transports for per-message delay attribution (Figure 14).
    pub track_delay: bool,
    /// Extra simulated time allowed after the last injection for
    /// outstanding messages to finish.
    pub drain: SimDuration,
    /// Messages at the head of the run excluded from the records
    /// (warm-up transient).
    pub warmup_msgs: u64,
    /// Retain every per-message [`MsgRecord`] in the result (O(messages)
    /// memory). Off by default: the always-on [`SlowdownSketch`] covers
    /// slowdown summaries in O(sketch bins), which is what keeps 1k-host
    /// runs memory-flat. Figure pipelines and tests that read
    /// `records`/`victim_records` opt in.
    pub keep_records: bool,
    /// Record a flight-recorder trace of the run into
    /// [`OnewayResult::trace`]. Only effective when the simulator's
    /// `trace` feature is compiled in; without it the result's trace is
    /// empty and the run is bit-identical to an untraced one.
    pub trace: bool,
    /// Ring capacity (records) for the flight recorder when `trace` is
    /// set; the oldest records are dropped beyond it.
    pub trace_cap: usize,
}

impl Default for OnewayOpts {
    fn default() -> Self {
        OnewayOpts {
            sample_wasted: false,
            sample_interval: SimDuration::from_micros(10),
            track_delay: false,
            drain: SimDuration::from_millis(200),
            warmup_msgs: 0,
            keep_records: false,
            trace: false,
            trace_cap: FlightRecorder::DEFAULT_CAP,
        }
    }
}

impl OnewayOpts {
    /// Opt in to exact per-message records (`records`/`victim_records`
    /// populated); memory grows with message count.
    pub fn with_records(mut self) -> Self {
        self.keep_records = true;
        self
    }

    /// Opt in to flight-recorder tracing with the default ring capacity.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }
}

/// Result of a one-way experiment.
#[derive(Debug)]
pub struct OnewayResult {
    /// Per-message observations (post-warmup, delivered only; the victim
    /// overlay's messages are reported in `victim_records` instead).
    /// Empty unless [`OnewayOpts::keep_records`] is set — the streaming
    /// [`sketch`](OnewayResult::sketch) is the default summary channel.
    pub records: Vec<MsgRecord>,
    /// Observations for the victim-flow overlay, if the traffic spec has
    /// one (empty otherwise, and empty unless
    /// [`OnewayOpts::keep_records`] is set).
    pub victim_records: Vec<MsgRecord>,
    /// Always-on streaming slowdown summary over the same non-victim,
    /// post-warmup messages `records` would hold; O(sketch bins) memory
    /// regardless of message count.
    pub sketch: SlowdownSketch,
    /// Messages injected.
    pub injected: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Messages aborted by the transport.
    pub aborted: u64,
    /// Messages still outstanding when the run ended: not delivered and
    /// not aborted. Nonzero either when the drain budget ran out under
    /// overload, or under fault injection — a one-way message whose every
    /// packet died on a downed link is unrecoverable (fire-and-forget:
    /// the receiver never learned of it, and the sender's lingering state
    /// expires without an acknowledgment mechanism, per §3.8).
    pub lost: u64,
    /// Deliveries of a message that had already been delivered or
    /// aborted, or of a tag never injected. Always zero for a correct
    /// transport; the conservation fuzzer asserts it.
    pub duplicate_deliveries: u64,
    /// Fabric statistics at harvest.
    pub stats: RunStats,
    /// Mean fraction of receiver time with an idle downlink while grants
    /// were withheld (Figure 16's y-axis); NaN if not sampled.
    pub wasted_fraction: f64,
    /// Wall-clock of the simulated run.
    pub duration: SimTime,
    /// Wire bytes per priority level on host uplinks (Figure 21).
    pub prio_bytes: [u64; 8],
    /// Offered goodput in bits/sec during the injection phase.
    pub offered_bps: f64,
    /// Delivered goodput in bits/sec over the whole run.
    pub delivered_bps: f64,
    /// Flight-recorder trace of the run, in `(time, seq)` order. Empty
    /// unless [`OnewayOpts::trace`] was set and the simulator's `trace`
    /// feature is compiled in.
    pub trace: Vec<TraceRecord>,
    /// Trace records dropped because the recorder ring filled (oldest
    /// first); nonzero means `trace` holds only the tail of the run.
    pub trace_dropped: u64,
    /// Deterministic event-engine counters (windows, batches, fast-path
    /// windows, calendar occupancy) at harvest.
    pub engine_stats: EngineStats,
    /// Wall-clock dispatch-phase profile of the run's engine. All zeros
    /// unless the simulator's `engine-profile` cargo feature is enabled;
    /// never deterministic — diagnostics only.
    pub engine_profile: EngineProfile,
}

/// Memoized unloaded-latency lookup passed through the event handler.
type UnloadedCache<'a, M, T> = dyn FnMut(&Network<M, T>, u64, PathClass) -> u64 + 'a;

/// Bitset over message tags `0..n_msgs`: which messages have already been
/// resolved (delivered or aborted). Backs the duplicate-delivery counter
/// in O(messages/8) memory.
struct ResolvedSet {
    bits: Vec<u64>,
    len: u64,
}

impl ResolvedSet {
    fn new(n: u64) -> Self {
        ResolvedSet { bits: vec![0u64; (n as usize).div_ceil(64)], len: n }
    }

    fn mark(&mut self, tag: u64) {
        if tag < self.len {
            self.bits[(tag / 64) as usize] |= 1u64 << (tag % 64);
        }
    }

    /// True if `tag` was previously resolved *or* was never a valid tag —
    /// either way a delivery for it is spurious.
    fn spurious(&self, tag: u64) -> bool {
        tag >= self.len || self.bits[(tag / 64) as usize] & (1u64 << (tag % 64)) != 0
    }
}

/// Run the all-to-all one-way-message experiment `spec` describes: inject
/// `spec.messages` Poisson arrivals at `spec.load`, then drain.
/// Entry point: [`ScenarioSpec::run_oneway`].
pub(crate) fn oneway<M, T>(
    spec: &ScenarioSpec,
    queues: Option<QueueDiscipline>,
    make: impl FnMut(HostId) -> T,
    opts: &OnewayOpts,
) -> OnewayResult
where
    M: PacketMeta,
    T: Transport<M>,
{
    let topo = spec.topology();
    let dist = spec.workload.dist();
    let traffic = &spec.traffic;
    let (load, n_msgs, seed) = (spec.load, spec.messages, spec.seed);
    let hosts = topo.num_hosts();
    // A bimodal mix shifts the mean message size (and overhead); fold the
    // second mode into the load arithmetic so the target load stays
    // honest.
    let (mean_msg_bytes, mean_overhead_bytes) = match &traffic.mix {
        Some(mix) => {
            let second = mix.second.dist();
            let f = mix.frac;
            (
                (1.0 - f) * dist.mean() + f * second.mean(),
                (1.0 - f) * LoadPlan::estimate_overhead(&dist, PAYLOAD, OVERHEAD, CTRL, 9_700)
                    + f * LoadPlan::estimate_overhead(&second, PAYLOAD, OVERHEAD, CTRL, 9_700),
            )
        }
        None => (dist.mean(), LoadPlan::estimate_overhead(&dist, PAYLOAD, OVERHEAD, CTRL, 9_700)),
    };
    let plan = LoadPlan {
        // Patterns that concentrate on one link (incast) interpret `load`
        // against that bottleneck, not the whole fabric.
        hosts: traffic.loaded_links(hosts),
        host_link_bps: topo.host_link_bps,
        load,
        mean_msg_bytes,
        mean_overhead_bytes,
    };
    let mut gen = PoissonArrivals::new(
        seed ^ 0x9e37_79b9,
        dist.clone(),
        hosts,
        plan.mean_interarrival_secs(),
    )
    .with_matrix(traffic.matrix(hosts, topo.hosts_per_rack, seed));
    if let Some(mix) = &traffic.mix {
        gen = gen.with_mix(mix.second.dist(), mix.frac);
    }
    if let Some(victim) = traffic.victim {
        gen = gen.with_victim(victim);
    }
    let mut net: Network<M, T> = Network::new(topo.clone(), spec.netcfg_with(queues), make);
    if !spec.faults.is_empty() {
        net.install_faults(&spec.faults);
    }
    if opts.trace {
        net.enable_trace(opts.trace_cap);
    }

    // tag -> (size, injected_ns, path_class, victim)
    let mut pending: HashMap<u64, (u64, u64, PathClass, bool)> = HashMap::new();
    let mut unloaded_cache: HashMap<(u64, PathClass), u64> = HashMap::new();
    let mut records =
        if opts.keep_records { Vec::with_capacity(n_msgs as usize) } else { Vec::new() };
    let mut victim_records = Vec::new();
    let mut sketch = SlowdownSketch::default();
    let mut resolved = ResolvedSet::new(n_msgs);
    let mut injected = 0u64;
    let mut delivered = 0u64;
    let mut aborted = 0u64;
    let mut duplicate_deliveries = 0u64;
    let mut injected_bytes = 0u64;
    let mut delivered_goodput_bytes = 0u64;

    // Wasted-bandwidth sampling state.
    let mut next_sample = SimTime::ZERO + opts.sample_interval;
    let mut samples = 0u64;
    let mut wasted_hits = 0u64;

    let mut unloaded_of = |net: &Network<M, T>, size: u64, class: PathClass| -> u64 {
        *unloaded_cache.entry((size, class)).or_insert_with(|| {
            net.topology().unloaded_one_way_class(size, PAYLOAD, OVERHEAD, class).as_nanos()
        })
    };

    let handle_events = |net: &mut Network<M, T>,
                         pending: &mut HashMap<u64, (u64, u64, PathClass, bool)>,
                         resolved: &mut ResolvedSet,
                         records: &mut Vec<MsgRecord>,
                         victim_records: &mut Vec<MsgRecord>,
                         sketch: &mut SlowdownSketch,
                         delivered: &mut u64,
                         aborted: &mut u64,
                         duplicate_deliveries: &mut u64,
                         delivered_goodput_bytes: &mut u64,
                         unloaded_cache: &mut UnloadedCache<'_, M, T>| {
        for (at, host, ev) in net.take_app_events() {
            match ev {
                AppEvent::MessageDelivered { src, tag, len } => {
                    if let Some((size, injected_ns, class, victim)) = pending.remove(&tag) {
                        debug_assert_eq!(size, len);
                        resolved.mark(tag);
                        *delivered += 1;
                        if tag >= opts.warmup_msgs {
                            *delivered_goodput_bytes += size;
                            let delay = if opts.track_delay {
                                net.with_transport(host, |t, _, _| t.take_message_delay(src, tag))
                            } else {
                                Default::default()
                            };
                            let unloaded_ns = unloaded_cache(net, size, class);
                            let rec = MsgRecord {
                                size,
                                injected_ns,
                                completed_ns: at.as_nanos(),
                                unloaded_ns,
                                delay,
                            };
                            if !victim {
                                sketch.push(size, rec.slowdown());
                            }
                            if opts.keep_records {
                                if victim {
                                    victim_records.push(rec);
                                } else {
                                    records.push(rec);
                                }
                            }
                        }
                    } else if resolved.spurious(tag) {
                        *duplicate_deliveries += 1;
                    }
                }
                AppEvent::Aborted { tag, .. } if pending.remove(&tag).is_some() => {
                    resolved.mark(tag);
                    *aborted += 1;
                }
                _ => {}
            }
        }
    };

    // Injection phase.
    while injected < n_msgs {
        let arrival = gen.next_arrival();
        let at = SimTime::from_nanos(arrival.at_ns);
        // Process events (and samples) up to the arrival.
        while opts.sample_wasted && next_sample <= at {
            net.run_until(next_sample);
            handle_events(
                &mut net,
                &mut pending,
                &mut resolved,
                &mut records,
                &mut victim_records,
                &mut sketch,
                &mut delivered,
                &mut aborted,
                &mut duplicate_deliveries,
                &mut delivered_goodput_bytes,
                &mut unloaded_of,
            );
            for h in net.topology().hosts() {
                samples += 1;
                if net.downlink_idle(h) && net.withholding(h) {
                    wasted_hits += 1;
                }
            }
            next_sample += opts.sample_interval;
        }
        net.run_until(at);
        handle_events(
            &mut net,
            &mut pending,
            &mut resolved,
            &mut records,
            &mut victim_records,
            &mut sketch,
            &mut delivered,
            &mut aborted,
            &mut duplicate_deliveries,
            &mut delivered_goodput_bytes,
            &mut unloaded_of,
        );
        let tag = injected;
        let class = topo.path_class(HostId(arrival.src), HostId(arrival.dst));
        net.inject_message(HostId(arrival.src), HostId(arrival.dst), arrival.size, tag);
        pending.insert(tag, (arrival.size, at.as_nanos(), class, arrival.victim));
        injected += 1;
        injected_bytes += arrival.size;
    }
    let inject_end = net.now();

    // Drain phase. `run_next_before` advances through one event batch
    // per iteration with a single queue probe (no peek-then-pop pair).
    let deadline = inject_end + opts.drain;
    while !pending.is_empty() && net.now() < deadline {
        if net.run_next_before(deadline).is_none() {
            break;
        }
        handle_events(
            &mut net,
            &mut pending,
            &mut resolved,
            &mut records,
            &mut victim_records,
            &mut sketch,
            &mut delivered,
            &mut aborted,
            &mut duplicate_deliveries,
            &mut delivered_goodput_bytes,
            &mut unloaded_of,
        );
    }

    let duration = net.now();
    let trace = net.take_trace();
    let trace_dropped = net.trace_dropped();
    let engine_stats = net.engine_stats();
    let engine_profile = net.engine_profile();
    let stats = net.harvest_stats();
    let prio_bytes = net.uplink_bytes_by_prio();
    let offered_bps = if inject_end.as_nanos() > 0 {
        injected_bytes as f64 * 8.0 / inject_end.as_secs_f64()
    } else {
        0.0
    };
    let delivered_bps = if duration.as_nanos() > 0 {
        delivered_goodput_bytes as f64 * 8.0 / duration.as_secs_f64()
    } else {
        0.0
    };

    OnewayResult {
        records,
        victim_records,
        sketch,
        injected,
        delivered,
        aborted,
        lost: pending.len() as u64,
        duplicate_deliveries,
        stats,
        wasted_fraction: if samples > 0 { wasted_hits as f64 / samples as f64 } else { f64::NAN },
        duration,
        prio_bytes,
        offered_bps,
        delivered_bps,
        trace,
        trace_dropped,
        engine_stats,
        engine_profile,
    }
}

/// Options for [`ScenarioSpec::run_rpc_echo`].
#[derive(Debug, Clone)]
pub struct RpcOpts {
    /// Number of client hosts (the first `clients` host ids); the rest
    /// are servers.
    pub clients: u32,
    /// Drain budget after the last injection.
    pub drain: SimDuration,
    /// RPCs at the head of the run excluded from the records.
    pub warmup: u64,
}

impl Default for RpcOpts {
    fn default() -> Self {
        RpcOpts { clients: 8, drain: SimDuration::from_millis(200), warmup: 0 }
    }
}

/// Result of an RPC-echo experiment.
#[derive(Debug)]
pub struct RpcResult {
    /// Per-RPC observations (echo size, issue → response-complete).
    pub records: Vec<MsgRecord>,
    /// RPCs issued.
    pub issued: u64,
    /// RPCs completed.
    pub completed: u64,
    /// RPCs aborted.
    pub aborted: u64,
    /// Fabric statistics.
    pub stats: RunStats,
    /// Simulated duration.
    pub duration: SimTime,
}

/// The §5.1 echo benchmark: each client issues echo RPCs of
/// workload-sampled sizes to random servers at `spec.load`; servers
/// return the same payload. Entry point: [`ScenarioSpec::run_rpc_echo`].
pub(crate) fn rpc_echo<M, T>(
    spec: &ScenarioSpec,
    queues: Option<QueueDiscipline>,
    make: impl FnMut(HostId) -> T,
    opts: &RpcOpts,
) -> RpcResult
where
    M: PacketMeta,
    T: Transport<M>,
{
    let topo = spec.topology();
    let dist = spec.workload.dist();
    let (load, n_rpcs, seed) = (spec.load, spec.messages, spec.seed);
    let hosts = topo.num_hosts();
    assert!(opts.clients < hosts, "need at least one server");
    let servers = hosts - opts.clients;
    let plan = LoadPlan {
        hosts: opts.clients,
        host_link_bps: topo.host_link_bps,
        load,
        mean_msg_bytes: dist.mean(),
        mean_overhead_bytes: LoadPlan::estimate_overhead(&dist, PAYLOAD, OVERHEAD, CTRL, 9_700),
    };
    let mut gen = PoissonArrivals::new(
        seed ^ 0x51ed_2701,
        dist.clone(),
        opts.clients.max(2),
        plan.mean_interarrival_secs(),
    );
    let mut net: Network<M, T> = Network::new(topo.clone(), spec.netcfg_with(queues), make);
    if !spec.faults.is_empty() {
        net.install_faults(&spec.faults);
    }
    let mut rng_srv = seed.wrapping_mul(0x2545_F491_4F6C_DD1D);

    let mut pending: HashMap<u64, (u64, u64)> = HashMap::new();
    let mut unloaded_cache: HashMap<u64, u64> = HashMap::new();
    let mut records = Vec::with_capacity(n_rpcs as usize);
    let (mut issued, mut completed, mut aborted) = (0u64, 0u64, 0u64);

    let mut process = |net: &mut Network<M, T>,
                       pending: &mut HashMap<u64, (u64, u64)>,
                       records: &mut Vec<MsgRecord>,
                       completed: &mut u64,
                       aborted: &mut u64| {
        for (at, host, ev) in net.take_app_events() {
            match ev {
                AppEvent::RpcRequestArrived { client, rpc, request_len } => {
                    // Echo: the response is the request payload.
                    net.inject_response(host, client, rpc, request_len);
                }
                AppEvent::RpcCompleted { tag, response_len, .. } => {
                    if let Some((size, injected_ns)) = pending.remove(&tag) {
                        debug_assert_eq!(size, response_len);
                        *completed += 1;
                        if tag >= opts.warmup {
                            let unloaded_ns = *unloaded_cache.entry(size).or_insert_with(|| {
                                // Echo RPC: request one way, response back.
                                2 * net
                                    .topology()
                                    .unloaded_one_way(size, PAYLOAD, OVERHEAD)
                                    .as_nanos()
                            });
                            records.push(MsgRecord {
                                size,
                                injected_ns,
                                completed_ns: at.as_nanos(),
                                unloaded_ns,
                                delay: Default::default(),
                            });
                        }
                    }
                }
                AppEvent::Aborted { tag, .. } => {
                    if pending.remove(&tag).is_some() {
                        *aborted += 1;
                    }
                }
                AppEvent::MessageDelivered { .. } => {}
            }
        }
    };

    while issued < n_rpcs {
        let arrival = gen.next_arrival();
        let at = SimTime::from_nanos(arrival.at_ns);
        net.run_until(at);
        process(&mut net, &mut pending, &mut records, &mut completed, &mut aborted);
        // Random client issues to a random server.
        rng_srv = rng_srv.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let client = HostId(arrival.src % opts.clients);
        let server = HostId(opts.clients + ((rng_srv >> 33) as u32 % servers));
        let tag = issued;
        net.inject_rpc(client, server, arrival.size, tag);
        pending.insert(tag, (arrival.size, at.as_nanos()));
        issued += 1;
    }
    let deadline = net.now() + opts.drain;
    while !pending.is_empty() && net.now() < deadline {
        if net.run_next_before(deadline).is_none() {
            break;
        }
        process(&mut net, &mut pending, &mut records, &mut completed, &mut aborted);
    }

    let stats = net.harvest_stats();
    RpcResult { records, issued, completed, aborted, stats, duration: net.now() }
}

/// Options for [`ScenarioSpec::run_incast`].
#[derive(Debug, Clone)]
pub struct IncastOpts {
    /// Response size in bytes (the paper's Figure 10 uses 10 KB).
    pub resp_len: u64,
    /// Number of rounds to repeat the fan-in.
    pub rounds: u32,
    /// Simulated-time budget per round before outstanding RPCs are
    /// written off as aborted.
    pub per_round_timeout: SimDuration,
}

impl Default for IncastOpts {
    fn default() -> Self {
        IncastOpts { resp_len: 10_000, rounds: 3, per_round_timeout: SimDuration::from_millis(500) }
    }
}

/// Result of one incast configuration (Figure 10).
#[derive(Debug, Clone)]
pub struct IncastResult {
    /// Number of concurrent RPCs per round.
    pub concurrent: u64,
    /// Aggregate response goodput in bits/sec.
    pub throughput_bps: f64,
    /// RPCs that had to be aborted.
    pub aborted: u64,
    /// Packet drops observed in the fabric.
    pub drops: u64,
    /// Full fabric statistics.
    pub stats: RunStats,
}

/// Figure 10: a single client issues `spec.messages` RPCs in parallel
/// (round-robin over the other hosts); each response is
/// `opts.resp_len` bytes. Repeats for `opts.rounds` rounds and reports
/// aggregate throughput. Entry point: [`ScenarioSpec::run_incast`].
///
/// Contract (pinned by tests): the spec's `faults` are installed on the
/// fabric like the other two drivers; `traffic` must be the default
/// (the fan-in *is* the traffic pattern) and `load` must be `0.0` (the
/// run is closed-loop) — non-conforming specs are rejected loudly
/// rather than silently ignored.
pub(crate) fn incast<M, T>(
    spec: &ScenarioSpec,
    queues: Option<QueueDiscipline>,
    make: impl FnMut(HostId) -> T,
    opts: &IncastOpts,
) -> IncastResult
where
    M: PacketMeta,
    T: Transport<M>,
{
    assert!(
        spec.traffic.is_default(),
        "incast scenario '{}': the rotational fan-in is the traffic pattern; \
         a non-default TrafficSpec would be silently ignored — remove it",
        spec.name
    );
    assert!(
        spec.load == 0.0,
        "incast scenario '{}': the run is closed-loop (no Poisson arrivals), \
         so `load` has no effect — set it to 0.0",
        spec.name
    );
    let topo = spec.topology();
    let concurrent = spec.messages;
    let hosts = topo.num_hosts();
    let mut net: Network<M, T> = Network::new(topo.clone(), spec.netcfg_with(queues), make);
    if !spec.faults.is_empty() {
        net.install_faults(&spec.faults);
    }
    let client = HostId(0);
    let mut tag = 0u64;
    let mut delivered_bytes = 0u64;
    let mut aborted = 0u64;
    let start = net.now();
    for _ in 0..opts.rounds {
        // The response fan-in is exactly the incast traffic pattern: the
        // matrix's (sender, 0) pairs name each round's servers (responses
        // converge on host 0, the client).
        let mut fan_in = TrafficMatrix::incast(concurrent.min(u32::MAX as u64) as u32, hosts);
        let mut outstanding = std::collections::HashSet::new();
        for _ in 0..concurrent {
            let (server, to) = fan_in.draw_rotational();
            debug_assert_eq!(to, client.0, "incast matrix must target the client");
            net.inject_rpc(client, HostId(server), 100, tag);
            outstanding.insert(tag);
            tag += 1;
        }
        let deadline = net.now() + opts.per_round_timeout;
        while !outstanding.is_empty() && net.now() < deadline {
            if net.run_next_before(deadline).is_none() {
                break;
            }
            for (_, host, ev) in net.take_app_events() {
                match ev {
                    AppEvent::RpcRequestArrived { client, rpc, .. } => {
                        net.inject_response(host, client, rpc, opts.resp_len);
                    }
                    AppEvent::RpcCompleted { tag, .. } if outstanding.remove(&tag) => {
                        delivered_bytes += opts.resp_len;
                    }
                    AppEvent::Aborted { tag, .. } if outstanding.remove(&tag) => {
                        aborted += 1;
                    }
                    _ => {}
                }
            }
        }
        aborted += outstanding.len() as u64;
    }
    let elapsed = (net.now() - start).as_secs_f64();
    let stats = net.harvest_stats();
    IncastResult {
        concurrent,
        throughput_bps: if elapsed > 0.0 { delivered_bytes as f64 * 8.0 / elapsed } else { 0.0 },
        aborted,
        drops: stats.total_drops(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::FabricSpec;
    use homa::HomaConfig;
    use homa_baselines::HomaSimTransport;
    use homa_workloads::{TrafficSpec, Workload};

    fn homa(h: HostId) -> HomaSimTransport {
        HomaSimTransport::new(h, HomaConfig::default())
    }

    #[test]
    fn oneway_small_run_records_everything() {
        let spec = ScenarioSpec::new(
            "small",
            FabricSpec::SingleSwitch { hosts: 8 },
            Workload::W1,
            0.5,
            500,
            7,
        );
        let res = spec.run_oneway(None, homa, &OnewayOpts::default().with_records());
        assert_eq!(res.injected, 500);
        assert_eq!(res.delivered, 500, "all messages must complete");
        assert_eq!(res.aborted, 0);
        assert_eq!(res.duplicate_deliveries, 0);
        assert_eq!(res.records.len(), 500);
        // Slowdowns are sane: >= ~1 (small numerical tolerance).
        for r in &res.records {
            assert!(r.slowdown() > 0.9, "slowdown {} for size {}", r.slowdown(), r.size);
        }
    }

    #[test]
    fn oneway_sketch_agrees_with_exact_records() {
        use crate::slowdown::SlowdownSummary;
        let spec = ScenarioSpec::new(
            "sketch",
            FabricSpec::MultiTor { hosts: 32 },
            Workload::W2,
            0.6,
            600,
            5,
        );
        let res = spec.run_oneway(None, homa, &OnewayOpts::default().with_records());
        // The sketch runs alongside the exact records and must tell the
        // same story within its alpha.
        assert_eq!(res.sketch.count(), res.records.len() as u64);
        let exact = SlowdownSummary::from_records(&res.records, 10);
        let approx = res.sketch.summary(10);
        let rel = |a: f64, b: f64| (a - b).abs() / b.max(1e-12);
        assert!(
            rel(approx.overall_p50, exact.overall_p50) < 0.011,
            "p50 {} vs {}",
            approx.overall_p50,
            exact.overall_p50
        );
        assert!(
            rel(approx.overall_p99, exact.overall_p99) < 0.011,
            "p99 {} vs {}",
            approx.overall_p99,
            exact.overall_p99
        );
        // delivered_bps no longer depends on retained records.
        let goodput: u64 = res.records.iter().map(|r| r.size).sum();
        let expect = goodput as f64 * 8.0 / res.duration.as_secs_f64();
        assert!((res.delivered_bps - expect).abs() < 1e-6);
    }

    #[test]
    fn rpc_echo_small_run() {
        let spec = ScenarioSpec::new(
            "rpc",
            FabricSpec::SingleSwitch { hosts: 16 },
            Workload::W3,
            0.4,
            300,
            3,
        );
        let res = spec.run_rpc_echo(None, homa, &RpcOpts::default());
        assert_eq!(res.issued, 300);
        assert_eq!(res.completed, 300);
        for r in &res.records {
            assert!(r.slowdown() > 0.9);
        }
    }

    #[test]
    fn oneway_incast_pattern_converges_on_host_zero() {
        use homa_workloads::VictimSpec;
        let spec = ScenarioSpec::new(
            "conv",
            FabricSpec::SingleSwitch { hosts: 12 },
            Workload::W2,
            0.5,
            400,
            11,
        )
        .with_traffic(TrafficSpec::incast(8).with_victim(VictimSpec::new(9, 10, 5_000, 50_000)));
        let res = spec.run_oneway(None, homa, &OnewayOpts::default().with_records());
        assert_eq!(res.injected, 400);
        assert_eq!(res.delivered, 400, "incast at 50% of the victim downlink must complete");
        // The victim overlay's completions are separated out.
        assert!(!res.victim_records.is_empty(), "no victim records");
        assert_eq!(res.records.len() + res.victim_records.len(), 400);
        for r in &res.victim_records {
            assert_eq!(r.size, 5_000);
        }
    }

    #[test]
    fn oneway_under_link_flap_recovers() {
        use homa_sim::{FaultPlan, LinkId};
        // Flap host 1's downlink four times during the run. Messages
        // that kept at least one surviving packet are recovered by
        // RESEND; only wholly-dropped one-way messages may be lost
        // (fire-and-forget), and every message must be accounted for.
        let spec = ScenarioSpec::new(
            "flap",
            FabricSpec::SingleSwitch { hosts: 8 },
            Workload::W3,
            0.5,
            600,
            3,
        )
        .with_faults(FaultPlan::new().link_flaps(
            LinkId::HostDownlink(HostId(1)),
            100_000,
            150_000,
            400_000,
            4,
        ));
        let res = spec.run_oneway(None, homa, &OnewayOpts::default());
        assert_eq!(res.injected, 600);
        assert_eq!(res.stats.faults_applied, 8);
        assert_eq!(
            res.delivered + res.aborted + res.lost,
            600,
            "messages unaccounted for: {} delivered, {} aborted, {} lost",
            res.delivered,
            res.aborted,
            res.lost
        );
        assert_eq!(res.duplicate_deliveries, 0);
        assert!(res.stats.fault_drops > 0, "flaps never bit");
        assert!(res.delivered >= 500, "flap recovery too lossy: {}", res.delivered);
    }

    #[test]
    fn incast_round_completes() {
        let spec = ScenarioSpec::incast("inc64", FabricSpec::SingleSwitch { hosts: 16 }, 64, 7);
        let res = spec.run_incast(
            None,
            homa,
            &IncastOpts {
                rounds: 2,
                per_round_timeout: SimDuration::from_millis(100),
                ..IncastOpts::default()
            },
        );
        assert_eq!(res.aborted, 0, "64-wide incast survives with control");
        assert!(res.throughput_bps > 1e9, "throughput {}", res.throughput_bps);
    }

    #[test]
    fn incast_installs_spec_faults() {
        use homa_sim::{FaultPlan, LinkId};
        // The satellite contract: an incast spec's fault schedule is
        // installed on the fabric, not silently dropped. The client's
        // downlink flap must show up in the fault counters and bite.
        let spec = ScenarioSpec::incast("inc_flap", FabricSpec::SingleSwitch { hosts: 16 }, 64, 7)
            .with_faults(FaultPlan::new().link_flaps(
                LinkId::HostDownlink(HostId(0)),
                20_000,
                60_000,
                200_000,
                2,
            ));
        let res = spec.run_incast(
            None,
            homa,
            &IncastOpts {
                rounds: 2,
                per_round_timeout: SimDuration::from_millis(100),
                ..IncastOpts::default()
            },
        );
        assert_eq!(res.stats.faults_applied, 4, "fault schedule not installed");
        assert!(res.stats.fault_drops > 0, "client downlink flap never bit");
        // The faulted run must still make progress once the link is back.
        assert!(res.throughput_bps > 0.0);
    }

    #[test]
    #[should_panic(expected = "the rotational fan-in is the traffic pattern")]
    fn incast_rejects_non_default_traffic() {
        let spec = ScenarioSpec::incast("bad", FabricSpec::SingleSwitch { hosts: 8 }, 16, 1)
            .with_traffic(TrafficSpec::shuffle());
        spec.run_incast(None, homa, &IncastOpts::default());
    }

    #[test]
    #[should_panic(expected = "closed-loop")]
    fn incast_rejects_nonzero_load() {
        let spec = ScenarioSpec::new(
            "bad_load",
            FabricSpec::SingleSwitch { hosts: 8 },
            Workload::W4,
            0.5,
            16,
            1,
        );
        spec.run_incast(None, homa, &IncastOpts::default());
    }
}
