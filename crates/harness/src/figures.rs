//! Digitized reference curves from the paper's Figures 12–16, and the
//! delta machinery behind the `repro compare` figure-accuracy gate.
//!
//! The published curves were digitized from the SIGCOMM 2018 paper and
//! its extended version (arXiv 1803.09615): for each curve we tabulate
//! `(x, y)` points — message-count percentiles for the slowdown figures
//! (the x-axis convention of [`crate::slowdown`]), network load for the
//! wasted-bandwidth sweep, or a single point for scalar figures — with
//! per-point provenance comments recording which panel the value was
//! read from. Digitization from log-scale plots is approximate (±10–20%
//! per point is typical); every curve therefore carries its own relative
//! tolerance, and curves where our reduced-scale reproduction knowingly
//! deviates are marked `gate: false` (reported, never failing). The
//! honest-gaps discussion lives in `EXPERIMENTS.md`.
//!
//! The comparison itself is pure data-joining: [`compare_curves`] takes
//! the measured points a `repro` run produced (extracted from the
//! canonical columns of the `FIG_<n>.json` tables), joins them against
//! [`REFERENCE`], and returns per-curve [`CurveDelta`]s with per-point
//! absolute/relative errors, the worst point, and the curve RMS —
//! everything the gate and the delta tables in `EXPERIMENTS.md` need.

/// How a curve's x coordinate is interpreted when joining measured
/// points to reference points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XAxis {
    /// x is a message-count percentile (10, 20, ..., 100): the slowdown
    /// figures. Measured bins join to the nearest reference percentile
    /// within [`MSG_PCTILE_JOIN_SLACK`].
    MsgPercentile,
    /// x is a network load fraction (0.5, 0.7, ...): Figure 16's sweep.
    Load,
    /// The curve is a single scalar (x = 0): Figure 15's capacity bars,
    /// Figure 14's delay attributions.
    Scalar,
}

impl XAxis {
    /// Maximum |measured.x − reference.x| for a join, in the axis' units.
    fn join_slack(self) -> f64 {
        match self {
            // Reduced-scale runs have bin boundaries that are not exact
            // deciles (equal-count chunks of a non-multiple-of-ten
            // message budget); accept the nearest bin within 8 points.
            XAxis::MsgPercentile => MSG_PCTILE_JOIN_SLACK,
            XAxis::Load => 0.015,
            XAxis::Scalar => 1e-9,
        }
    }
}

/// Join slack for percentile axes (see [`XAxis::MsgPercentile`]).
pub const MSG_PCTILE_JOIN_SLACK: f64 = 8.0;

/// One published curve to compare a reproduction run against.
#[derive(Debug, Clone, Copy)]
pub struct RefCurve {
    /// Which figure the curve is from (`"fig12"`, ...).
    pub figure: &'static str,
    /// Workload name (`"W4"`).
    pub workload: &'static str,
    /// Protocol name as the `repro` tables print it (`"Homa"`).
    pub protocol: &'static str,
    /// Sub-curve discriminator where one panel holds several curves per
    /// protocol (Figure 16's `"sched=1"` overcommitment degrees);
    /// empty when unused.
    pub variant: &'static str,
    /// Network load the curve was published at.
    pub load: f64,
    /// Metric name as the `repro` tables emit it (`"p99_slowdown"`).
    pub metric: &'static str,
    /// Interpretation of the x coordinates.
    pub x_axis: XAxis,
    /// Gate threshold on the curve's RMS relative error.
    pub rel_tolerance: f64,
    /// Whether drift past the tolerance fails `repro compare`. Curves
    /// our reduced-scale setup knowingly cannot match are report-only.
    pub gate: bool,
    /// Where the numbers were read from.
    pub provenance: &'static str,
    /// `(x, y)` reference points.
    pub points: &'static [(f64, f64)],
}

impl RefCurve {
    /// Human-readable curve key (`fig12 W4/Homa@80% p99_slowdown`).
    pub fn key(&self) -> String {
        let variant =
            if self.variant.is_empty() { String::new() } else { format!(" [{}]", self.variant) };
        format!(
            "{} {}/{}{}@{:.0}% {}",
            self.figure,
            self.workload,
            self.protocol,
            variant,
            self.load * 100.0,
            self.metric
        )
    }
}

/// One measured data point extracted from a `FIG_<n>.json` table's
/// canonical columns.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredPoint {
    /// Figure the point came from (`"fig12"`).
    pub figure: String,
    /// Workload name.
    pub workload: String,
    /// Protocol name.
    pub protocol: String,
    /// Sub-curve discriminator (empty when unused).
    pub variant: String,
    /// Network load of the run.
    pub load: f64,
    /// Metric name.
    pub metric: String,
    /// x coordinate (percentile / load / 0).
    pub x: f64,
    /// Measured value.
    pub y: f64,
}

/// Reference vs. measured at one joined x.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointDelta {
    /// The reference x the join anchored on.
    pub x: f64,
    /// Published value.
    pub reference: f64,
    /// Measured value.
    pub measured: f64,
}

impl PointDelta {
    /// measured − reference.
    pub fn abs_delta(&self) -> f64 {
        self.measured - self.reference
    }

    /// (measured − reference) / reference.
    pub fn rel_delta(&self) -> f64 {
        self.abs_delta() / self.reference
    }
}

/// The comparison result for one reference curve.
#[derive(Debug, Clone)]
pub struct CurveDelta {
    /// The curve compared against.
    pub curve: &'static RefCurve,
    /// Joined points (reference order).
    pub points: Vec<PointDelta>,
    /// Reference x values no measured point joined to (e.g. the run
    /// used different loads or workloads).
    pub missing: Vec<f64>,
}

impl CurveDelta {
    /// Root-mean-square of the per-point relative errors; 0 when no
    /// points joined.
    pub fn rms_rel(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.points.iter().map(|p| p.rel_delta().powi(2)).sum();
        (sum / self.points.len() as f64).sqrt()
    }

    /// The point with the largest |relative error|.
    pub fn worst(&self) -> Option<&PointDelta> {
        self.points.iter().max_by(|a, b| {
            a.rel_delta().abs().partial_cmp(&b.rel_delta().abs()).expect("no NaN deltas")
        })
    }

    /// Whether the curve is within tolerance (`tol_scale` multiplies the
    /// curve's own `rel_tolerance`; 1.0 is the published gate). A curve
    /// with no joined points trivially passes — the caller decides
    /// whether an entirely-unjoined comparison is an error.
    pub fn within_tolerance(&self, tol_scale: f64) -> bool {
        self.rms_rel() <= self.curve.rel_tolerance * tol_scale
    }

    /// Whether this curve should fail the gate: a gated curve with at
    /// least one joined point fails on drift past tolerance *or* on any
    /// unjoined reference point — a partial join means the run stopped
    /// covering percentiles the reference pins (e.g. a `--bins` change),
    /// and a regression confined to the unjoined points must not pass
    /// silently. A fully-unjoined curve is skipped instead (the run
    /// deliberately excluded its workload/load; [`gate_failures`] still
    /// errors when *nothing* joined at all).
    pub fn gated_failure(&self, tol_scale: f64) -> bool {
        self.curve.gate
            && !self.points.is_empty()
            && (!self.within_tolerance(tol_scale) || !self.missing.is_empty())
    }
}

/// Join `measured` points against every curve in [`REFERENCE`].
pub fn compare_curves(measured: &[MeasuredPoint]) -> Vec<CurveDelta> {
    REFERENCE
        .iter()
        .map(|curve| {
            let mine: Vec<&MeasuredPoint> = measured
                .iter()
                .filter(|m| {
                    m.figure == curve.figure
                        && m.workload == curve.workload
                        && m.protocol == curve.protocol
                        && m.variant == curve.variant
                        && m.metric == curve.metric
                        && (m.load - curve.load).abs() <= 0.015
                })
                .collect();
            let slack = curve.x_axis.join_slack();
            let mut points = Vec::new();
            let mut missing = Vec::new();
            for &(rx, ry) in curve.points {
                let nearest = mine
                    .iter()
                    .min_by(|a, b| {
                        let da = (a.x - rx).abs();
                        let db = (b.x - rx).abs();
                        da.partial_cmp(&db).expect("no NaN x")
                    })
                    .filter(|m| (m.x - rx).abs() <= slack);
                match nearest {
                    Some(m) => points.push(PointDelta { x: rx, reference: ry, measured: m.y }),
                    None => missing.push(rx),
                }
            }
            CurveDelta { curve, points, missing }
        })
        .collect()
}

/// Gate verdict over a whole comparison: the failing curve keys, or an
/// error when nothing joined at all (which means the extraction or the
/// run shape broke, not that the reproduction is perfect).
pub fn gate_failures(deltas: &[CurveDelta], tol_scale: f64) -> Result<Vec<String>, String> {
    if deltas.iter().all(|d| d.points.is_empty()) {
        return Err("no measured point joined any reference curve; \
             the run shape or the FIG_*.json extraction is broken"
            .into());
    }
    Ok(deltas
        .iter()
        .filter(|d| d.gated_failure(tol_scale))
        .map(|d| {
            if !d.within_tolerance(tol_scale) {
                format!(
                    "{}: RMS rel err {:.2} > tolerance {:.2}",
                    d.curve.key(),
                    d.rms_rel(),
                    d.curve.rel_tolerance * tol_scale
                )
            } else {
                format!(
                    "{}: {} of {} reference points unjoined (x = {:?}); run with the \
                     default bins/loads so every published point is covered",
                    d.curve.key(),
                    d.missing.len(),
                    d.curve.points.len(),
                    d.missing
                )
            }
        })
        .collect())
}

// ---------------------------------------------------------------------
// The digitized reference data.
//
// Slowdown curves (fig12/fig13): x = message-count percentile, i.e. the
// right edge of each decile bin of the workload's message-size
// distribution (10 = smallest 10% of messages). y = slowdown. Values
// were read off the published log-scale panels; the per-point comments
// give the approximate size at that percentile (from
// `Workload::decile_sizes`) to make re-digitization reproducible.
//
// Capacity bars (fig15): single scalar per (workload, protocol).
// Wasted-bandwidth curves (fig16): x = network load fraction.
// Delay attribution (fig14): single scalar per workload, microseconds.
// ---------------------------------------------------------------------

/// Every digitized reference curve, in figure order.
pub static REFERENCE: &[RefCurve] = &[
    // ----------------------------------------------------- Figure 12
    RefCurve {
        figure: "fig12",
        workload: "W2",
        protocol: "Homa",
        variant: "",
        load: 0.8,
        metric: "p99_slowdown",
        x_axis: XAxis::MsgPercentile,
        rel_tolerance: 0.60,
        gate: true,
        provenance: "SIGCOMM'18 Fig 12, W2 panel (99th percentile, 80% load), log-scale read",
        points: &[
            (10.0, 1.7),  // ~3 B messages
            (20.0, 1.7),  // ~34 B
            (30.0, 1.7),  // ~58 B
            (40.0, 1.8),  // ~171 B
            (50.0, 1.8),  // ~269 B
            (60.0, 1.8),  // ~320 B
            (70.0, 1.9),  // ~366 B
            (80.0, 1.9),  // ~427 B
            (90.0, 2.0),  // ~512 B
            (100.0, 2.8), // tail: up to 262 KB
        ],
    },
    RefCurve {
        figure: "fig12",
        workload: "W4",
        protocol: "Homa",
        variant: "",
        load: 0.8,
        metric: "p99_slowdown",
        x_axis: XAxis::MsgPercentile,
        rel_tolerance: 0.60,
        gate: true,
        provenance: "SIGCOMM'18 Fig 12, W4 panel (99th percentile, 80% load), log-scale read",
        points: &[
            (10.0, 2.2),  // ~315 B messages (single packet)
            (20.0, 2.2),  // ~376 B
            (30.0, 2.3),  // ~502 B
            (40.0, 2.3),  // ~561 B
            (50.0, 2.4),  // ~662 B
            (60.0, 2.5),  // ~960 B
            (70.0, 2.8),  // ~6.4 KB (multi-packet, still unscheduled)
            (80.0, 3.2),  // ~49 KB (scheduled)
            (90.0, 4.0),  // ~120 KB
            (100.0, 5.5), // tail: up to 10 MB
        ],
    },
    // The 50%-load points come from the extended paper's load sweep
    // (arXiv 1803.09615); at half load queueing nearly vanishes and the
    // p99 sits close to the preemption-lag floor.
    RefCurve {
        figure: "fig12",
        workload: "W2",
        protocol: "Homa",
        variant: "",
        load: 0.5,
        metric: "p99_slowdown",
        x_axis: XAxis::MsgPercentile,
        rel_tolerance: 0.60,
        gate: true,
        provenance: "arXiv 1803.09615 load sweep, W2 at 50% load, approximate read",
        points: &[
            (10.0, 1.4),  // ~3 B
            (20.0, 1.4),  // ~34 B
            (30.0, 1.4),  // ~58 B
            (40.0, 1.5),  // ~171 B
            (50.0, 1.5),  // ~269 B
            (60.0, 1.5),  // ~320 B
            (70.0, 1.5),  // ~366 B
            (80.0, 1.6),  // ~427 B
            (90.0, 1.6),  // ~512 B
            (100.0, 2.0), // tail
        ],
    },
    RefCurve {
        figure: "fig12",
        workload: "W4",
        protocol: "Homa",
        variant: "",
        load: 0.5,
        metric: "p99_slowdown",
        x_axis: XAxis::MsgPercentile,
        rel_tolerance: 0.60,
        gate: true,
        provenance: "arXiv 1803.09615 load sweep, W4 at 50% load, approximate read",
        points: &[
            (10.0, 1.8),  // ~315 B
            (20.0, 1.8),  // ~376 B
            (30.0, 1.9),  // ~502 B
            (40.0, 1.9),  // ~561 B
            (50.0, 2.0),  // ~662 B
            (60.0, 2.0),  // ~960 B
            (70.0, 2.2),  // ~6.4 KB
            (80.0, 2.5),  // ~49 KB
            (90.0, 3.0),  // ~120 KB
            (100.0, 4.0), // tail
        ],
    },
    // Baseline curves: reported for context, never gated — our
    // reduced-scale fabric (24 hosts vs. 144) shifts their congestion
    // behavior more than Homa's (see EXPERIMENTS.md, honest gaps).
    RefCurve {
        figure: "fig12",
        workload: "W4",
        protocol: "pFabric",
        variant: "",
        load: 0.8,
        metric: "p99_slowdown",
        x_axis: XAxis::MsgPercentile,
        rel_tolerance: 1.0,
        gate: false,
        provenance: "SIGCOMM'18 Fig 12, W4 panel, pFabric curve, log-scale read",
        points: &[
            (10.0, 2.4),  // ~315 B
            (20.0, 2.4),  // ~376 B
            (30.0, 2.5),  // ~502 B
            (40.0, 2.5),  // ~561 B
            (50.0, 2.6),  // ~662 B
            (60.0, 2.7),  // ~960 B
            (70.0, 3.0),  // ~6.4 KB
            (80.0, 3.5),  // ~49 KB
            (90.0, 4.5),  // ~120 KB
            (100.0, 6.5), // tail
        ],
    },
    RefCurve {
        figure: "fig12",
        workload: "W4",
        protocol: "PIAS",
        variant: "",
        load: 0.8,
        metric: "p99_slowdown",
        x_axis: XAxis::MsgPercentile,
        rel_tolerance: 1.5,
        gate: false,
        provenance: "SIGCOMM'18 Fig 12, W4 panel, PIAS curve, log-scale read (steep tail)",
        points: &[
            (10.0, 2.6),    // ~315 B: first MLFQ level, near Homa
            (20.0, 2.7),    // ~376 B
            (30.0, 2.9),    // ~502 B
            (40.0, 3.2),    // ~561 B
            (50.0, 3.8),    // ~662 B
            (60.0, 5.0),    // ~960 B
            (70.0, 9.0),    // ~6.4 KB: demoted below short flows
            (80.0, 18.0),   // ~49 KB
            (90.0, 45.0),   // ~120 KB
            (100.0, 130.0), // tail: big flows starve at low priority
        ],
    },
    // ----------------------------------------------------- Figure 13
    RefCurve {
        figure: "fig13",
        workload: "W2",
        protocol: "Homa",
        variant: "",
        load: 0.8,
        metric: "p50_slowdown",
        x_axis: XAxis::MsgPercentile,
        rel_tolerance: 0.40,
        gate: true,
        provenance: "SIGCOMM'18 Fig 13, W2 panel (median, 80% load)",
        points: &[
            (10.0, 1.1),  // ~3 B
            (20.0, 1.1),  // ~34 B
            (30.0, 1.1),  // ~58 B
            (40.0, 1.2),  // ~171 B
            (50.0, 1.2),  // ~269 B
            (60.0, 1.2),  // ~320 B
            (70.0, 1.2),  // ~366 B
            (80.0, 1.2),  // ~427 B
            (90.0, 1.3),  // ~512 B
            (100.0, 1.5), // tail
        ],
    },
    RefCurve {
        figure: "fig13",
        workload: "W4",
        protocol: "Homa",
        variant: "",
        load: 0.8,
        metric: "p50_slowdown",
        x_axis: XAxis::MsgPercentile,
        rel_tolerance: 0.40,
        gate: true,
        provenance: "SIGCOMM'18 Fig 13, W4 panel (median, 80% load)",
        points: &[
            (10.0, 1.3),  // ~315 B
            (20.0, 1.3),  // ~376 B
            (30.0, 1.3),  // ~502 B
            (40.0, 1.4),  // ~561 B
            (50.0, 1.4),  // ~662 B
            (60.0, 1.5),  // ~960 B
            (70.0, 1.6),  // ~6.4 KB
            (80.0, 1.8),  // ~49 KB
            (90.0, 2.0),  // ~120 KB
            (100.0, 2.5), // tail
        ],
    },
    RefCurve {
        figure: "fig13",
        workload: "W2",
        protocol: "Homa",
        variant: "",
        load: 0.5,
        metric: "p50_slowdown",
        x_axis: XAxis::MsgPercentile,
        rel_tolerance: 0.40,
        gate: true,
        provenance: "arXiv 1803.09615 load sweep, W2 median at 50% load",
        points: &[
            (10.0, 1.05), // ~3 B
            (30.0, 1.05), // ~58 B
            (50.0, 1.1),  // ~269 B
            (70.0, 1.1),  // ~366 B
            (90.0, 1.1),  // ~512 B
            (100.0, 1.3), // tail
        ],
    },
    RefCurve {
        figure: "fig13",
        workload: "W4",
        protocol: "Homa",
        variant: "",
        load: 0.5,
        metric: "p50_slowdown",
        x_axis: XAxis::MsgPercentile,
        rel_tolerance: 0.40,
        gate: true,
        provenance: "arXiv 1803.09615 load sweep, W4 median at 50% load",
        points: &[
            (10.0, 1.2),  // ~315 B
            (30.0, 1.2),  // ~502 B
            (50.0, 1.3),  // ~662 B
            (70.0, 1.4),  // ~6.4 KB
            (90.0, 1.6),  // ~120 KB
            (100.0, 1.9), // tail
        ],
    },
    // ----------------------------------------------------- Figure 14
    // Tail-delay attribution for short messages at 80% load. The paper
    // reports the dominant component is downlink queueing behind other
    // unscheduled packets, a few microseconds at the near-p99. Absolute
    // microseconds depend strongly on fabric scale, so these stay
    // report-only.
    RefCurve {
        figure: "fig14",
        workload: "W4",
        protocol: "Homa",
        variant: "",
        load: 0.8,
        metric: "queueing_us",
        x_axis: XAxis::Scalar,
        rel_tolerance: 1.0,
        gate: false,
        provenance: "SIGCOMM'18 Fig 14, W4 bar: near-p99 queueing delay for short messages",
        points: &[(0.0, 8.0)],
    },
    RefCurve {
        figure: "fig14",
        workload: "W2",
        protocol: "Homa",
        variant: "",
        load: 0.8,
        metric: "queueing_us",
        x_axis: XAxis::Scalar,
        rel_tolerance: 1.0,
        gate: false,
        provenance: "SIGCOMM'18 Fig 14, W2 bar: near-p99 queueing delay for short messages",
        points: &[(0.0, 4.0)],
    },
    // ----------------------------------------------------- Figure 15
    // Maximum sustainable load as a fraction of host link bandwidth.
    RefCurve {
        figure: "fig15",
        workload: "W2",
        protocol: "Homa",
        variant: "",
        load: 0.0,
        metric: "max_load",
        x_axis: XAxis::Scalar,
        rel_tolerance: 0.12,
        gate: true,
        provenance: "SIGCOMM'18 Fig 15, W2 Homa bar (~92% of link bandwidth)",
        points: &[(0.0, 0.92)],
    },
    RefCurve {
        figure: "fig15",
        workload: "W4",
        protocol: "Homa",
        variant: "",
        load: 0.0,
        metric: "max_load",
        x_axis: XAxis::Scalar,
        rel_tolerance: 0.12,
        gate: true,
        provenance: "SIGCOMM'18 Fig 15, W4 Homa bar (~93% of link bandwidth)",
        points: &[(0.0, 0.93)],
    },
    RefCurve {
        figure: "fig15",
        workload: "W2",
        protocol: "pHost",
        variant: "",
        load: 0.0,
        metric: "max_load",
        x_axis: XAxis::Scalar,
        rel_tolerance: 0.25,
        gate: false,
        provenance: "SIGCOMM'18 Fig 15, W2 pHost bar (~73%; Fig 12 caption notes pHost \
                     cannot sustain 80%)",
        points: &[(0.0, 0.73)],
    },
    RefCurve {
        figure: "fig15",
        workload: "W4",
        protocol: "pHost",
        variant: "",
        load: 0.0,
        metric: "max_load",
        x_axis: XAxis::Scalar,
        rel_tolerance: 0.25,
        gate: false,
        provenance: "SIGCOMM'18 Fig 15, W4 pHost bar (~72%)",
        points: &[(0.0, 0.72)],
    },
    // ----------------------------------------------------- Figure 16
    // Wasted downlink bandwidth vs. load for different degrees of
    // overcommitment (number of scheduled priority levels), W4. The
    // paper's headline: with no overcommitment (1 scheduled level) a
    // receiver's downlink idles noticeably while grants are withheld;
    // 7 levels reclaim most of it. Our reduced 24-host fabric
    // reproduces the *shape* (waste grows with load, overcommitment
    // shrinks it) at ~5-8x smaller magnitude, and with overcommitment
    // >= 3 the measured waste is ~0 at this scale — so only the
    // degree-1 curve is gated (a generous tolerance that still fails
    // if the waste signal disappears entirely or explodes), and the
    // higher-degree curves are report-only. See EXPERIMENTS.md.
    RefCurve {
        figure: "fig16",
        workload: "W4",
        protocol: "Homa",
        variant: "sched=1",
        load: 0.0, // per-point loads carry the x axis
        metric: "wasted_frac",
        x_axis: XAxis::Load,
        rel_tolerance: 0.90,
        gate: true,
        provenance: "SIGCOMM'18 Fig 16, overcommitment degree 1 curve",
        points: &[
            (0.5, 0.04),  // at 50% load
            (0.7, 0.09),  // at 70% load
            (0.85, 0.16), // at 85% load
        ],
    },
    RefCurve {
        figure: "fig16",
        workload: "W4",
        protocol: "Homa",
        variant: "sched=3",
        load: 0.0,
        metric: "wasted_frac",
        x_axis: XAxis::Load,
        rel_tolerance: 0.80,
        gate: false,
        provenance: "SIGCOMM'18 Fig 16, overcommitment degree 3 curve (report-only: \
                     measured waste ~0 at reduced scale)",
        points: &[
            (0.5, 0.02),  // at 50% load
            (0.7, 0.04),  // at 70% load
            (0.85, 0.08), // at 85% load
        ],
    },
    RefCurve {
        figure: "fig16",
        workload: "W4",
        protocol: "Homa",
        variant: "sched=7",
        load: 0.0,
        metric: "wasted_frac",
        x_axis: XAxis::Load,
        rel_tolerance: 0.80,
        gate: false,
        provenance: "SIGCOMM'18 Fig 16, overcommitment degree 7 curve (report-only: \
                     measured waste ~0 at reduced scale)",
        points: &[
            (0.5, 0.01),  // at 50% load
            (0.7, 0.02),  // at 70% load
            (0.85, 0.05), // at 85% load
        ],
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_tables_are_sane() {
        assert!(!REFERENCE.is_empty());
        for c in REFERENCE {
            assert!(!c.points.is_empty(), "{}: empty curve", c.key());
            assert!(c.rel_tolerance > 0.0, "{}: nonpositive tolerance", c.key());
            assert!(!c.provenance.is_empty(), "{}: missing provenance", c.key());
            for &(x, y) in c.points {
                assert!(y > 0.0, "{}: nonpositive reference value at x={x}", c.key());
                match c.x_axis {
                    XAxis::MsgPercentile => assert!((0.0..=100.0).contains(&x)),
                    XAxis::Load => assert!((0.0..=1.0).contains(&x)),
                    XAxis::Scalar => assert_eq!(x, 0.0),
                }
            }
        }
    }

    #[test]
    fn acceptance_coverage_w2_w4_at_two_loads() {
        // The figure-accuracy gate must cover W2 and W4 at two loads
        // (the PR's acceptance criterion); pin it here so the reference
        // tables cannot silently lose that coverage.
        for wl in ["W2", "W4"] {
            let loads: Vec<f64> = REFERENCE
                .iter()
                .filter(|c| c.figure == "fig12" && c.workload == wl && c.protocol == "Homa")
                .map(|c| c.load)
                .collect();
            assert!(
                loads.contains(&0.5) && loads.contains(&0.8),
                "fig12 {wl}/Homa must be digitized at loads 0.5 and 0.8, got {loads:?}"
            );
        }
    }

    fn mp(
        figure: &str,
        wl: &str,
        proto: &str,
        load: f64,
        metric: &str,
        x: f64,
        y: f64,
    ) -> MeasuredPoint {
        MeasuredPoint {
            figure: figure.into(),
            workload: wl.into(),
            protocol: proto.into(),
            variant: String::new(),
            load,
            metric: metric.into(),
            x,
            y,
        }
    }

    #[test]
    fn exact_match_passes() {
        let curve = &REFERENCE[0]; // fig12 W2/Homa@0.8
        let measured: Vec<MeasuredPoint> = curve
            .points
            .iter()
            .map(|&(x, y)| mp("fig12", "W2", "Homa", 0.8, "p99_slowdown", x, y))
            .collect();
        let deltas = compare_curves(&measured);
        let d = deltas.iter().find(|d| std::ptr::eq(d.curve, curve)).unwrap();
        assert_eq!(d.points.len(), curve.points.len());
        assert!(d.missing.is_empty());
        assert_eq!(d.rms_rel(), 0.0);
        assert!(d.within_tolerance(1.0));
        assert!(!d.gated_failure(1.0));
        let fails = gate_failures(&deltas, 1.0).unwrap();
        assert!(fails.is_empty(), "{fails:?}");
    }

    #[test]
    fn drift_fails_gated_curves_only() {
        let curve = &REFERENCE[0];
        // 3x the published values: far past a 0.6 RMS tolerance.
        let measured: Vec<MeasuredPoint> = curve
            .points
            .iter()
            .map(|&(x, y)| mp("fig12", "W2", "Homa", 0.8, "p99_slowdown", x, 3.0 * y))
            .collect();
        let deltas = compare_curves(&measured);
        let d = deltas.iter().find(|d| std::ptr::eq(d.curve, curve)).unwrap();
        assert!((d.rms_rel() - 2.0).abs() < 1e-9, "rms {}", d.rms_rel());
        assert!(d.gated_failure(1.0));
        let fails = gate_failures(&deltas, 1.0).unwrap();
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("fig12 W2/Homa"));
        // A bigger tolerance scale waves it through.
        assert!(gate_failures(&deltas, 5.0).unwrap().is_empty());
    }

    #[test]
    fn ungated_drift_reports_but_passes() {
        // pFabric fig12 is report-only.
        let curve =
            REFERENCE.iter().find(|c| c.protocol == "pFabric" && c.figure == "fig12").unwrap();
        let measured: Vec<MeasuredPoint> = curve
            .points
            .iter()
            .map(|&(x, y)| {
                let mut m = mp("fig12", "W4", "pFabric", 0.8, "p99_slowdown", x, 10.0 * y);
                m.protocol = "pFabric".into();
                m
            })
            .collect();
        let deltas = compare_curves(&measured);
        let d = deltas.iter().find(|d| std::ptr::eq(d.curve, curve)).unwrap();
        assert!(!d.within_tolerance(1.0));
        assert!(!d.gated_failure(1.0), "ungated curve must not fail the gate");
        assert!(gate_failures(&deltas, 1.0).unwrap().is_empty());
    }

    #[test]
    fn off_decile_bins_join_to_nearest() {
        // Reduced-scale bins land at 9.7%, 19.4%, ... — they must still
        // join the 10/20/... reference percentiles.
        let curve = &REFERENCE[0];
        let measured: Vec<MeasuredPoint> = curve
            .points
            .iter()
            .map(|&(x, y)| mp("fig12", "W2", "Homa", 0.8, "p99_slowdown", x * 0.97, y))
            .collect();
        let deltas = compare_curves(&measured);
        let d = deltas.iter().find(|d| std::ptr::eq(d.curve, curve)).unwrap();
        assert_eq!(d.points.len(), curve.points.len(), "missing: {:?}", d.missing);
    }

    #[test]
    fn unjoined_comparison_is_an_error() {
        assert!(gate_failures(&compare_curves(&[]), 1.0).is_err());
        // Wrong load: nothing joins.
        let measured = vec![mp("fig12", "W2", "Homa", 0.65, "p99_slowdown", 50.0, 1.8)];
        assert!(gate_failures(&compare_curves(&measured), 1.0).is_err());
    }

    #[test]
    fn missing_reference_points_are_tracked() {
        // Only the 50th percentile measured: the rest are missing, the
        // joined point still produces a delta.
        let measured = vec![mp("fig12", "W4", "Homa", 0.8, "p99_slowdown", 50.0, 2.4)];
        let deltas = compare_curves(&measured);
        let d = deltas
            .iter()
            .find(|d| {
                d.curve.workload == "W4"
                    && d.curve.load == 0.8
                    && d.curve.figure == "fig12"
                    && d.curve.protocol == "Homa"
            })
            .unwrap();
        assert_eq!(d.points.len(), 1);
        assert_eq!(d.missing.len(), d.curve.points.len() - 1);
        assert_eq!(d.points[0].x, 50.0);
        assert!((d.points[0].rel_delta()).abs() < 1e-9);
        // A partial join on a gated curve fails the gate even though the
        // joined point is within tolerance: a regression confined to the
        // unjoined percentiles must not pass silently.
        assert!(d.within_tolerance(1.0));
        assert!(d.gated_failure(1.0));
        let fails = gate_failures(&deltas, 1.0).unwrap();
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("unjoined"), "{fails:?}");
    }
}
