//! Maximum sustainable load search (Figure 15).
//!
//! The paper defines a protocol's capacity as the highest offered load at
//! which queues do not grow without bound ("the load generator runs
//! open-loop, so if the offered load exceeds the protocol's capacity,
//! queues grow without bound"). We probe this with a bisection: a load is
//! *sustainable* if, within a bounded drain budget after the last
//! injection, (almost) every message completes.

use crate::driver::{run_oneway, OnewayOpts};
use homa_sim::{HostId, NetworkConfig, PacketMeta, Topology, Transport};
use homa_workloads::MessageSizeDist;

/// Outcome of one probe.
#[derive(Debug, Clone, Copy)]
pub struct CapacityProbe {
    /// Offered load probed.
    pub load: f64,
    /// Fraction of injected messages delivered within the budget.
    pub delivered_frac: f64,
    /// Whether the load counted as sustainable.
    pub sustainable: bool,
}

/// Bisect for the maximum sustainable load of a transport on `topo`.
///
/// `make` must build a fresh transport per host per probe run.
/// Returns the highest sustainable load found (within `tol`) and the
/// probe history.
#[allow(clippy::too_many_arguments)]
pub fn max_sustainable_load<M, T>(
    topo: &Topology,
    netcfg: &NetworkConfig,
    mut make: impl FnMut(HostId) -> T,
    dist: &MessageSizeDist,
    n_msgs: u64,
    seed: u64,
    lo: f64,
    hi: f64,
    tol: f64,
) -> (f64, Vec<CapacityProbe>)
where
    M: PacketMeta,
    T: Transport<M>,
{
    let opts = OnewayOpts::default();
    let mut probes = Vec::new();
    let mut probe = |load: f64, make: &mut dyn FnMut(HostId) -> T| -> bool {
        let res = run_oneway(topo, netcfg.clone(), &mut *make, dist, load, n_msgs, seed, &opts);
        let frac = res.delivered as f64 / res.injected.max(1) as f64;
        // 99.5% completion within the drain budget counts as keeping up.
        let ok = frac >= 0.995;
        probes.push(CapacityProbe { load, delivered_frac: frac, sustainable: ok });
        ok
    };

    let mut lo = lo;
    let mut hi = hi;
    // Establish brackets.
    if !probe(lo, &mut make) {
        return (0.0, probes);
    }
    if probe(hi, &mut make) {
        return (hi, probes);
    }
    while hi - lo > tol {
        let mid = (lo + hi) / 2.0;
        if probe(mid, &mut make) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo, probes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use homa::HomaConfig;
    use homa_baselines::HomaSimTransport;
    use homa_workloads::Workload;

    #[test]
    fn homa_sustains_moderate_load_on_small_cluster() {
        let topo = Topology::single_switch(8);
        let netcfg = NetworkConfig::default();
        let (cap, probes) = max_sustainable_load(
            &topo,
            &netcfg,
            |h| HomaSimTransport::new(h, HomaConfig::default()),
            &Workload::W1.dist(),
            400,
            11,
            0.5,
            0.99,
            0.25, // coarse: just verify bisection machinery
        );
        assert!(cap >= 0.5, "homa must sustain 50% on W1, probes: {probes:?}");
        assert!(!probes.is_empty());
    }
}
