//! Maximum sustainable load search (Figure 15).
//!
//! The paper defines a protocol's capacity as the highest offered load at
//! which queues do not grow without bound ("the load generator runs
//! open-loop, so if the offered load exceeds the protocol's capacity,
//! queues grow without bound"). We probe this with a bisection: a load is
//! *sustainable* if, within a bounded drain budget after the last
//! injection, (almost) every message completes.

use crate::driver::OnewayOpts;
use crate::scenario::ScenarioSpec;
use homa_sim::{HostId, PacketMeta, QueueDiscipline, Transport};

/// Outcome of one probe.
#[derive(Debug, Clone, Copy)]
pub struct CapacityProbe {
    /// Offered load probed.
    pub load: f64,
    /// Fraction of injected messages delivered within the budget.
    pub delivered_frac: f64,
    /// Whether the load counted as sustainable.
    pub sustainable: bool,
}

/// Bracket and tolerance for the bisection.
#[derive(Debug, Clone, Copy)]
pub struct CapacitySearch {
    /// Lower bracket: if this load is not sustainable the search
    /// reports capacity 0.0 immediately.
    pub lo: f64,
    /// Upper bracket: if this load *is* sustainable it is returned
    /// without bisecting further.
    pub hi: f64,
    /// Stop once the bracket is narrower than this.
    pub tol: f64,
}

impl Default for CapacitySearch {
    fn default() -> Self {
        CapacitySearch { lo: 0.5, hi: 0.98, tol: 0.03 }
    }
}

/// Bisect for the maximum sustainable load given a probe function that
/// maps an offered load to the delivered fraction of a bounded run.
/// A probe counts as sustainable at 99.5% completion. Returns the
/// highest sustainable load found (within `search.tol`) and the probe
/// history. This is the raw engine behind [`max_sustainable_load`];
/// callers with bespoke run shapes (per-protocol drain budgets, say)
/// can drive it directly.
pub fn max_sustainable_load_with(
    mut probe: impl FnMut(f64) -> f64,
    search: CapacitySearch,
) -> (f64, Vec<CapacityProbe>) {
    let mut probes = Vec::new();
    let mut check = |load: f64| -> bool {
        let frac = probe(load);
        // 99.5% completion within the drain budget counts as keeping up.
        let ok = frac >= 0.995;
        probes.push(CapacityProbe { load, delivered_frac: frac, sustainable: ok });
        ok
    };

    let mut lo = search.lo;
    let mut hi = search.hi;
    // Establish brackets.
    if !check(lo) {
        return (0.0, probes);
    }
    if check(hi) {
        return (hi, probes);
    }
    while hi - lo > search.tol {
        let mid = (lo + hi) / 2.0;
        if check(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo, probes)
}

/// Bisect for the maximum sustainable load of a transport on `spec`'s
/// fabric and workload. The spec's own `load` field is ignored — each
/// probe reruns the scenario at the bisection's trial load. `make` must
/// build a fresh transport per host per probe run.
pub fn max_sustainable_load<M, T>(
    spec: &ScenarioSpec,
    queues: Option<QueueDiscipline>,
    mut make: impl FnMut(HostId) -> T,
    search: CapacitySearch,
) -> (f64, Vec<CapacityProbe>)
where
    M: PacketMeta,
    T: Transport<M>,
{
    let opts = OnewayOpts::default();
    max_sustainable_load_with(
        |load| {
            let res = spec.clone().with_load(load).run_oneway(queues, &mut make, &opts);
            res.delivered as f64 / res.injected.max(1) as f64
        },
        search,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::FabricSpec;
    use homa::HomaConfig;
    use homa_baselines::HomaSimTransport;
    use homa_workloads::Workload;

    #[test]
    fn homa_sustains_moderate_load_on_small_cluster() {
        let spec = ScenarioSpec::new(
            "cap_w1_8h",
            FabricSpec::SingleSwitch { hosts: 8 },
            Workload::W1,
            0.0, // overridden per probe
            400,
            11,
        );
        let (cap, probes) = max_sustainable_load(
            &spec,
            None,
            |h| HomaSimTransport::new(h, HomaConfig::default()),
            // coarse tolerance: just verify the bisection machinery
            CapacitySearch { lo: 0.5, hi: 0.99, tol: 0.25 },
        );
        assert!(cap >= 0.5, "homa must sustain 50% on W1, probes: {probes:?}");
        assert!(!probes.is_empty());
    }

    #[test]
    fn bisection_brackets_behave() {
        // Unsustainable at the low bracket → capacity 0.
        let (cap, probes) = max_sustainable_load_with(|_| 0.5, CapacitySearch::default());
        assert_eq!(cap, 0.0);
        assert_eq!(probes.len(), 1);
        // Sustainable at the high bracket → returned directly.
        let (cap, probes) = max_sustainable_load_with(|_| 1.0, CapacitySearch::default());
        assert_eq!(cap, 0.98);
        assert_eq!(probes.len(), 2);
        // A sharp cliff at 0.8 is localized to within tol.
        let (cap, _) = max_sustainable_load_with(
            |load| if load <= 0.8 { 1.0 } else { 0.9 },
            CapacitySearch { lo: 0.5, hi: 0.98, tol: 0.01 },
        );
        assert!((cap - 0.8).abs() < 0.01, "cliff at 0.8, found {cap}");
    }
}
