//! Plain-text rendering of experiment outputs.
//!
//! The `repro` binary prints figures as aligned text tables (one row per
//! size bin / sweep point), which is what `EXPERIMENTS.md` records. A CSV
//! sibling is emitted for plotting.

use crate::figures::CurveDelta;
use crate::slowdown::SlowdownSummary;

/// Render a slowdown summary as the paper's figure rows: one row per
/// size bin with p50 and p99 slowdown.
pub fn slowdown_table(label: &str, s: &SlowdownSummary) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{label}\n{:>12} {:>12} {:>8} {:>10} {:>10}\n",
        "min_size", "max_size", "count", "p50", "p99"
    ));
    for b in &s.bins {
        out.push_str(&format!(
            "{:>12} {:>12} {:>8} {:>10.2} {:>10.2}\n",
            b.min_size, b.max_size, b.count, b.p50, b.p99
        ));
    }
    out.push_str(&format!("overall: p50 {:.2}  p99 {:.2}\n", s.overall_p50, s.overall_p99));
    out
}

/// Render a slowdown summary as CSV (`min_size,max_size,count,p50,p99`).
pub fn slowdown_csv(s: &SlowdownSummary) -> String {
    let mut out = String::from("min_size,max_size,count,p50,p99,mean\n");
    for b in &s.bins {
        out.push_str(&format!(
            "{},{},{},{:.4},{:.4},{:.4}\n",
            b.min_size, b.max_size, b.count, b.p50, b.p99, b.mean
        ));
    }
    out
}

/// A simple aligned key/value series (sweep outputs).
pub fn series_table(label: &str, header: (&str, &str), rows: &[(String, String)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{label}\n{:>16} {:>16}\n", header.0, header.1));
    for (k, v) in rows {
        out.push_str(&format!("{k:>16} {v:>16}\n"));
    }
    out
}

/// Render a figure-accuracy comparison as the delta tables recorded in
/// `EXPERIMENTS.md`: one block per reference curve with per-point
/// reference/measured/delta columns, then the curve's RMS relative
/// error, worst point, and gate verdict.
pub fn delta_report(deltas: &[CurveDelta], tol_scale: f64) -> String {
    let mut out = String::new();
    for d in deltas {
        if d.points.is_empty() && d.missing.len() == d.curve.points.len() {
            out.push_str(&format!("{}: no measured points (skipped)\n\n", d.curve.key()));
            continue;
        }
        out.push_str(&format!("{}\n", d.curve.key()));
        out.push_str(&format!(
            "{:>10} {:>10} {:>10} {:>10} {:>9}\n",
            "x", "reference", "measured", "delta", "rel"
        ));
        for p in &d.points {
            out.push_str(&format!(
                "{:>10} {:>10.3} {:>10.3} {:>+10.3} {:>+8.1}%\n",
                fmt_axis(p.x),
                p.reference,
                p.measured,
                p.abs_delta(),
                p.rel_delta() * 100.0
            ));
        }
        for x in &d.missing {
            let reference =
                d.curve.points.iter().find(|(rx, _)| rx == x).map(|(_, y)| *y).unwrap_or(f64::NAN);
            out.push_str(&format!(
                "{:>10} {reference:>10.3} {:>10} {:>10} {:>9}\n",
                fmt_axis(*x),
                "-",
                "-",
                "-"
            ));
        }
        let verdict = if !d.curve.gate {
            "report-only".to_string()
        } else if d.gated_failure(tol_scale) {
            if d.within_tolerance(tol_scale) {
                format!("FAIL ({} reference points unjoined)", d.missing.len())
            } else {
                "FAIL".to_string()
            }
        } else {
            "PASS".to_string()
        };
        let worst = d
            .worst()
            .map(|w| format!("worst {:+.1}% at x={}", w.rel_delta() * 100.0, fmt_axis(w.x)))
            .unwrap_or_else(|| "no joined points".into());
        out.push_str(&format!(
            "curve: RMS rel err {:.2} (tolerance {:.2}) — {worst} — {verdict}\n\n",
            d.rms_rel(),
            d.curve.rel_tolerance * tol_scale
        ));
    }
    out
}

/// Axis values print as percentiles/loads without trailing noise.
fn fmt_axis(x: f64) -> String {
    if x.fract() == 0.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.2}")
    }
}

/// Format bits/sec with engineering units.
pub fn fmt_bps(bps: f64) -> String {
    if bps >= 1e9 {
        format!("{:.2} Gbps", bps / 1e9)
    } else if bps >= 1e6 {
        format!("{:.2} Mbps", bps / 1e6)
    } else {
        format!("{:.0} bps", bps)
    }
}

/// Format a byte count with units.
pub fn fmt_bytes(b: f64) -> String {
    if b >= 1e6 {
        format!("{:.1} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.1} KB", b / 1e3)
    } else {
        format!("{b:.0} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slowdown::{MsgRecord, SlowdownSummary};

    #[test]
    fn tables_render_without_panic() {
        let records: Vec<MsgRecord> = (1..=40)
            .map(|i| MsgRecord {
                size: i * 100,
                injected_ns: 0,
                completed_ns: 2_000 * i,
                unloaded_ns: 1_000,
                delay: Default::default(),
            })
            .collect();
        let s = SlowdownSummary::from_records(&records, 4);
        let t = slowdown_table("fig-test", &s);
        assert!(t.contains("fig-test"));
        assert!(t.contains("overall"));
        let c = slowdown_csv(&s);
        assert_eq!(c.lines().count(), 5);
    }

    #[test]
    fn delta_report_renders_pass_fail_and_missing() {
        use crate::figures::{compare_curves, MeasuredPoint, REFERENCE};
        let curve = &REFERENCE[0]; // fig12 W2/Homa@0.8
        let mut measured: Vec<MeasuredPoint> = curve
            .points
            .iter()
            .map(|&(x, y)| MeasuredPoint {
                figure: "fig12".into(),
                workload: "W2".into(),
                protocol: "Homa".into(),
                variant: String::new(),
                load: 0.8,
                metric: "p99_slowdown".into(),
                x,
                y: y * 1.1,
            })
            .collect();
        let deltas = compare_curves(&measured);
        let text = delta_report(&deltas, 1.0);
        assert!(text.contains("fig12 W2/Homa@80% p99_slowdown"));
        assert!(text.contains("PASS"), "{text}");
        assert!(text.contains("worst +10.0%"), "{text}");
        // Curves with no points at all render as skipped.
        assert!(text.contains("skipped"), "{text}");
        // Drift far past tolerance flips the verdict.
        for m in &mut measured {
            m.y *= 10.0;
        }
        let text = delta_report(&compare_curves(&measured), 1.0);
        assert!(text.contains("FAIL"), "{text}");
    }

    #[test]
    fn formatting_units() {
        assert_eq!(fmt_bps(9.6e9), "9.60 Gbps");
        assert_eq!(fmt_bps(42e6), "42.00 Mbps");
        assert_eq!(fmt_bytes(1_500.0), "1.5 KB");
        assert_eq!(fmt_bytes(2_500_000.0), "2.5 MB");
    }
}
