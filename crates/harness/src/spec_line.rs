//! Canonical one-line text encoding of a [`ScenarioSpec`].
//!
//! Every run in this repository is a pure function of its spec, so a
//! spec's text form *is* a replay token: the fuzzers print the shrunk
//! line of any failing scenario, CI uploads them as artifacts, and
//! [`ScenarioSpec::parse_spec_line`] turns a pasted line back into the
//! exact run. The encoding is a flat sequence of `key=value` fields:
//!
//! ```text
//! name=det_fault_incast fabric=ls:2x6x2 wl=W2 load=0.5 msgs=700 seed=21 \
//!   engine=hier traffic=incast:8+victim:9:3:20000:100000 \
//!   faults=300000:down:hdn0,450000:up:hdn0,500000:pause:3,900000:resume:3
//! ```
//!
//! Field grammar (all values whitespace-free):
//!
//! * `fabric` — `sw:<hosts>` | `ls:<racks>x<hpr>x<spines>` |
//!   `mtor:<hosts>` | `paper` | `ft:<k>`
//! * `wl` — `W1`..`W5`
//! * `load` — `f64` via Rust's shortest round-trip `Display`
//! * `engine` — `hier` | `legacy` | `par:<threads>` | `par:<threads>:<batch>`
//!   (the window-batch size; omitted when 0 = auto, so older lines keep
//!   their canonical form)
//! * `traffic` — `uniform` | `perm` | `shuffle` | `incast:<fan_in>` |
//!   `hotspot:<frac>:<local|cross>`, optionally followed by
//!   `+victim:<src>:<dst>:<size>:<period_ns>` and/or
//!   `+mix:<W>:<frac>`
//! * `faults` — `-` for an empty plan, else comma-joined
//!   `<at_ns>:<action>` events where `action` is one of
//!   `down:<link>` `up:<link>` `rate:<link>:<bps>` `raterestore:<link>`
//!   `pause:<host>` `resume:<host>` `rackout:<rack>` `rackrestore:<rack>`
//!   `spineout:<spine>` `spinerestore:<spine>`, and `<link>` is
//!   `hup<host>` | `hdn<host>` | `tor<rack>-<spine>` | `spd<spine>-<rack>`
//!
//! `format ∘ parse` is the identity on every spec whose name is free of
//! whitespace (names with whitespace are sanitized to `_` on output);
//! the fuzz suite pins this property over [`ScenarioSpec::arbitrary`].

use crate::scenario::{FabricSpec, ScenarioSpec};
use homa_sim::{EngineKind, Fault, FaultPlan, HostId, LinkId};
use homa_workloads::{MixSpec, PatternSpec, TrafficSpec, VictimSpec, Workload};
use std::fmt::Write as _;

fn fabric_str(f: FabricSpec) -> String {
    match f {
        FabricSpec::SingleSwitch { hosts } => format!("sw:{hosts}"),
        FabricSpec::LeafSpine { racks, hosts_per_rack, spines } => {
            format!("ls:{racks}x{hosts_per_rack}x{spines}")
        }
        FabricSpec::MultiTor { hosts } => format!("mtor:{hosts}"),
        FabricSpec::Paper => "paper".into(),
        FabricSpec::FatTree { k } => format!("ft:{k}"),
    }
}

fn parse_fabric(s: &str) -> Result<FabricSpec, String> {
    if s == "paper" {
        return Ok(FabricSpec::Paper);
    }
    let (kind, rest) = s.split_once(':').ok_or_else(|| format!("bad fabric `{s}`"))?;
    let num = |t: &str| t.parse::<u32>().map_err(|_| format!("bad fabric number in `{s}`"));
    match kind {
        "sw" => Ok(FabricSpec::SingleSwitch { hosts: num(rest)? }),
        "mtor" => Ok(FabricSpec::MultiTor { hosts: num(rest)? }),
        "ft" => Ok(FabricSpec::FatTree { k: num(rest)? }),
        "ls" => {
            let parts: Vec<&str> = rest.split('x').collect();
            if parts.len() != 3 {
                return Err(format!("bad leaf-spine shape `{s}` (want ls:RxHxS)"));
            }
            Ok(FabricSpec::LeafSpine {
                racks: num(parts[0])?,
                hosts_per_rack: num(parts[1])?,
                spines: num(parts[2])?,
            })
        }
        _ => Err(format!("unknown fabric kind `{kind}`")),
    }
}

fn engine_str(e: EngineKind) -> String {
    match e {
        EngineKind::Hierarchical => "hier".into(),
        EngineKind::LegacyHeap => "legacy".into(),
        // The auto batch (`0`) stays implicit so pre-batching spec lines
        // re-format to themselves (the parse∘format fixed point).
        EngineKind::ParallelHier { threads, batch: 0 } => format!("par:{threads}"),
        EngineKind::ParallelHier { threads, batch } => format!("par:{threads}:{batch}"),
    }
}

fn parse_engine(s: &str) -> Result<EngineKind, String> {
    match s {
        "hier" => Ok(EngineKind::Hierarchical),
        "legacy" => Ok(EngineKind::LegacyHeap),
        _ => match s.strip_prefix("par:") {
            Some(rest) => {
                let (t, b) = match rest.split_once(':') {
                    Some((t, b)) => (t, Some(b)),
                    None => (rest, None),
                };
                let threads =
                    t.parse::<u32>().map_err(|_| format!("bad thread count in engine `{s}`"))?;
                let batch = match b {
                    Some(b) => {
                        b.parse::<u32>().map_err(|_| format!("bad batch size in engine `{s}`"))?
                    }
                    None => 0,
                };
                Ok(EngineKind::ParallelHier { threads, batch })
            }
            None => Err(format!("unknown engine `{s}`")),
        },
    }
}

fn traffic_str(t: &TrafficSpec) -> String {
    let mut out = match t.pattern {
        PatternSpec::Uniform => "uniform".to_string(),
        PatternSpec::Permutation => "perm".to_string(),
        PatternSpec::Shuffle => "shuffle".to_string(),
        PatternSpec::Incast { fan_in } => format!("incast:{fan_in}"),
        PatternSpec::Hotspot { hot_frac, rack_local } => {
            format!("hotspot:{hot_frac}:{}", if rack_local { "local" } else { "cross" })
        }
    };
    if let Some(v) = t.victim {
        let _ = write!(out, "+victim:{}:{}:{}:{}", v.src, v.dst, v.size, v.period_ns);
    }
    if let Some(m) = t.mix {
        let _ = write!(out, "+mix:{}:{}", m.second.name(), m.frac);
    }
    out
}

fn parse_traffic(s: &str) -> Result<TrafficSpec, String> {
    let mut parts = s.split('+');
    let pat = parts.next().unwrap_or("");
    let fields: Vec<&str> = pat.split(':').collect();
    let pattern = match fields[0] {
        "uniform" => PatternSpec::Uniform,
        "perm" => PatternSpec::Permutation,
        "shuffle" => PatternSpec::Shuffle,
        "incast" => {
            let fan_in = fields
                .get(1)
                .and_then(|t| t.parse::<u32>().ok())
                .ok_or_else(|| format!("bad incast fan-in in `{pat}`"))?;
            PatternSpec::Incast { fan_in }
        }
        "hotspot" => {
            if fields.len() != 3 {
                return Err(format!("bad hotspot `{pat}` (want hotspot:<frac>:<local|cross>)"));
            }
            let hot_frac =
                fields[1].parse::<f64>().map_err(|_| format!("bad hotspot frac in `{pat}`"))?;
            let rack_local = match fields[2] {
                "local" => true,
                "cross" => false,
                other => return Err(format!("bad hotspot locality `{other}`")),
            };
            PatternSpec::Hotspot { hot_frac, rack_local }
        }
        other => return Err(format!("unknown traffic pattern `{other}`")),
    };
    let mut spec = TrafficSpec { pattern, victim: None, mix: None };
    for part in parts {
        let fields: Vec<&str> = part.split(':').collect();
        match fields[0] {
            "victim" if fields.len() == 5 => {
                let n = |i: usize| {
                    fields[i].parse::<u64>().map_err(|_| format!("bad victim field in `{part}`"))
                };
                let host = |i: usize| {
                    fields[i].parse::<u32>().map_err(|_| format!("bad victim host in `{part}`"))
                };
                // Validate here rather than letting `VictimSpec::new`
                // assert: these are user-typed values, so they must
                // surface as named-field errors, not panics (found by
                // the spec-line grammar fuzzer).
                let (src, dst) = (host(1)?, host(2)?);
                if src == dst {
                    return Err(format!("self-addressed victim flow in `{part}`"));
                }
                let period_ns = n(4)?;
                if period_ns == 0 {
                    return Err(format!("zero victim period in `{part}`"));
                }
                spec.victim = Some(VictimSpec::new(src, dst, n(3)?, period_ns));
            }
            "mix" if fields.len() == 3 => {
                let second = Workload::parse(fields[1])
                    .ok_or_else(|| format!("bad mix workload in `{part}`"))?;
                let frac =
                    fields[2].parse::<f64>().map_err(|_| format!("bad mix frac in `{part}`"))?;
                spec.mix = Some(MixSpec { second, frac });
            }
            _ => return Err(format!("unknown traffic overlay `{part}`")),
        }
    }
    Ok(spec)
}

fn link_str(l: LinkId) -> String {
    match l {
        LinkId::HostUplink(h) => format!("hup{}", h.0),
        LinkId::HostDownlink(h) => format!("hdn{}", h.0),
        LinkId::TorUplink { rack, spine } => format!("tor{rack}-{spine}"),
        LinkId::SpineDownlink { spine, rack } => format!("spd{spine}-{rack}"),
    }
}

fn parse_link(s: &str) -> Result<LinkId, String> {
    let pair = |t: &str| -> Result<(u32, u32), String> {
        let (a, b) = t.split_once('-').ok_or_else(|| format!("bad link `{s}`"))?;
        Ok((
            a.parse::<u32>().map_err(|_| format!("bad link `{s}`"))?,
            b.parse::<u32>().map_err(|_| format!("bad link `{s}`"))?,
        ))
    };
    if let Some(t) = s.strip_prefix("hup") {
        Ok(LinkId::HostUplink(HostId(t.parse().map_err(|_| format!("bad link `{s}`"))?)))
    } else if let Some(t) = s.strip_prefix("hdn") {
        Ok(LinkId::HostDownlink(HostId(t.parse().map_err(|_| format!("bad link `{s}`"))?)))
    } else if let Some(t) = s.strip_prefix("tor") {
        let (rack, spine) = pair(t)?;
        Ok(LinkId::TorUplink { rack, spine })
    } else if let Some(t) = s.strip_prefix("spd") {
        let (spine, rack) = pair(t)?;
        Ok(LinkId::SpineDownlink { spine, rack })
    } else {
        Err(format!("unknown link `{s}`"))
    }
}

fn fault_str(f: Fault) -> String {
    match f {
        Fault::LinkDown(l) => format!("down:{}", link_str(l)),
        Fault::LinkUp(l) => format!("up:{}", link_str(l)),
        Fault::RateLimit { link, bps } => format!("rate:{}:{bps}", link_str(link)),
        Fault::RateRestore(l) => format!("raterestore:{}", link_str(l)),
        Fault::PauseReceiver(h) => format!("pause:{}", h.0),
        Fault::ResumeReceiver(h) => format!("resume:{}", h.0),
        Fault::RackOutage { rack } => format!("rackout:{rack}"),
        Fault::RackRestore { rack } => format!("rackrestore:{rack}"),
        Fault::SpineOutage { spine } => format!("spineout:{spine}"),
        Fault::SpineRestore { spine } => format!("spinerestore:{spine}"),
    }
}

fn parse_fault(s: &str) -> Result<Fault, String> {
    let (kind, rest) = s.split_once(':').ok_or_else(|| format!("bad fault `{s}`"))?;
    let host = |t: &str| -> Result<HostId, String> {
        Ok(HostId(t.parse::<u32>().map_err(|_| format!("bad host in `{s}`"))?))
    };
    let num = |t: &str| t.parse::<u32>().map_err(|_| format!("bad number in `{s}`"));
    match kind {
        "down" => Ok(Fault::LinkDown(parse_link(rest)?)),
        "up" => Ok(Fault::LinkUp(parse_link(rest)?)),
        "rate" => {
            let (link, bps) =
                rest.rsplit_once(':').ok_or_else(|| format!("bad rate fault `{s}`"))?;
            Ok(Fault::RateLimit {
                link: parse_link(link)?,
                bps: bps.parse::<u64>().map_err(|_| format!("bad bps in `{s}`"))?,
            })
        }
        "raterestore" => Ok(Fault::RateRestore(parse_link(rest)?)),
        "pause" => Ok(Fault::PauseReceiver(host(rest)?)),
        "resume" => Ok(Fault::ResumeReceiver(host(rest)?)),
        "rackout" => Ok(Fault::RackOutage { rack: num(rest)? }),
        "rackrestore" => Ok(Fault::RackRestore { rack: num(rest)? }),
        "spineout" => Ok(Fault::SpineOutage { spine: num(rest)? }),
        "spinerestore" => Ok(Fault::SpineRestore { spine: num(rest)? }),
        _ => Err(format!("unknown fault `{s}`")),
    }
}

fn faults_str(plan: &FaultPlan) -> String {
    if plan.is_empty() {
        return "-".into();
    }
    plan.events
        .iter()
        .map(|&(at, f)| format!("{at}:{}", fault_str(f)))
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_faults(s: &str) -> Result<FaultPlan, String> {
    if s == "-" {
        return Ok(FaultPlan::default());
    }
    let mut plan = FaultPlan::default();
    for ev in s.split(',') {
        let (at, fault) = ev.split_once(':').ok_or_else(|| format!("bad fault event `{ev}`"))?;
        let at = at.parse::<u64>().map_err(|_| format!("bad fault time in `{ev}`"))?;
        plan.events.push((at, parse_fault(fault)?));
    }
    Ok(plan)
}

impl ScenarioSpec {
    /// The spec as one replayable line of `key=value` fields (see the
    /// module docs for the grammar). Whitespace in the name is sanitized
    /// to `_` so the line always splits back into exactly nine fields.
    pub fn to_spec_line(&self) -> String {
        let name: String =
            self.name.chars().map(|c| if c.is_whitespace() { '_' } else { c }).collect();
        format!(
            "name={name} fabric={} wl={} load={} msgs={} seed={} engine={} traffic={} faults={}",
            fabric_str(self.fabric),
            self.workload.name(),
            self.load,
            self.messages,
            self.seed,
            engine_str(self.engine),
            traffic_str(&self.traffic),
            faults_str(&self.faults),
        )
    }

    /// Parse a line produced by [`ScenarioSpec::to_spec_line`] back into
    /// the spec. `engine`, `traffic` and `faults` may be omitted (they
    /// default); the other six fields are required. Unknown keys are an
    /// error, so typos fail loudly rather than replaying the wrong run.
    pub fn parse_spec_line(line: &str) -> Result<ScenarioSpec, String> {
        let mut name = None;
        let mut fabric = None;
        let mut workload = None;
        let mut load = None;
        let mut messages = None;
        let mut seed = None;
        let mut engine = EngineKind::default();
        let mut traffic = TrafficSpec::default();
        let mut faults = FaultPlan::default();
        for field in line.split_whitespace() {
            let (key, value) =
                field.split_once('=').ok_or_else(|| format!("bad field `{field}` (want k=v)"))?;
            // Every parse error names the field it came from and the
            // offending value, so a mangled replay line points straight
            // at the broken key instead of a context-free complaint.
            let ctx = |e: String| format!("field `{key}`: {e}");
            match key {
                "name" => name = Some(value.to_string()),
                "fabric" => fabric = Some(parse_fabric(value).map_err(ctx)?),
                "wl" => {
                    workload = Some(
                        Workload::parse(value)
                            .ok_or_else(|| ctx(format!("unknown workload `{value}`")))?,
                    )
                }
                "load" => {
                    load =
                        Some(value.parse::<f64>().map_err(|_| ctx(format!("bad load `{value}`")))?)
                }
                "msgs" => {
                    messages =
                        Some(value.parse::<u64>().map_err(|_| ctx(format!("bad msgs `{value}`")))?)
                }
                "seed" => {
                    seed =
                        Some(value.parse::<u64>().map_err(|_| ctx(format!("bad seed `{value}`")))?)
                }
                "engine" => engine = parse_engine(value).map_err(ctx)?,
                "traffic" => traffic = parse_traffic(value).map_err(ctx)?,
                "faults" => faults = parse_faults(value).map_err(ctx)?,
                other => return Err(format!("unknown field `{other}` (value `{value}`)")),
            }
        }
        let req = |what: &str| format!("missing required field `{what}`");
        Ok(ScenarioSpec::new(
            name.ok_or_else(|| req("name"))?,
            fabric.ok_or_else(|| req("fabric"))?,
            workload.ok_or_else(|| req("wl"))?,
            load.ok_or_else(|| req("load"))?,
            messages.ok_or_else(|| req("msgs"))?,
            seed.ok_or_else(|| req("seed"))?,
        )
        .with_engine(engine)
        .with_traffic(traffic)
        .with_faults(faults))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trips(spec: &ScenarioSpec) {
        let line = spec.to_spec_line();
        let back = ScenarioSpec::parse_spec_line(&line)
            .unwrap_or_else(|e| panic!("parse of `{line}` failed: {e}"));
        assert_eq!(&back, spec, "round trip diverged for `{line}`");
        // And the text form itself is a fixed point.
        assert_eq!(back.to_spec_line(), line);
    }

    #[test]
    fn plain_spec_round_trips() {
        round_trips(&ScenarioSpec::new(
            "w4_80_100h",
            FabricSpec::MultiTor { hosts: 100 },
            Workload::W4,
            0.8,
            3_000,
            42,
        ));
    }

    #[test]
    fn every_fabric_and_engine_round_trips() {
        for fabric in [
            FabricSpec::SingleSwitch { hosts: 8 },
            FabricSpec::LeafSpine { racks: 3, hosts_per_rack: 8, spines: 2 },
            FabricSpec::MultiTor { hosts: 40 },
            FabricSpec::Paper,
            FabricSpec::FatTree { k: 4 },
        ] {
            for engine in [
                EngineKind::Hierarchical,
                EngineKind::LegacyHeap,
                EngineKind::ParallelHier { threads: 0, batch: 0 },
                EngineKind::ParallelHier { threads: 2, batch: 0 },
                EngineKind::ParallelHier { threads: 2, batch: 16 },
                EngineKind::ParallelHier { threads: 0, batch: 4 },
            ] {
                round_trips(
                    &ScenarioSpec::new("x", fabric, Workload::W1, 0.55, 700, 9).with_engine(engine),
                );
            }
        }
    }

    #[test]
    fn traffic_overlays_round_trip() {
        for traffic in [
            TrafficSpec::uniform(),
            TrafficSpec::permutation(),
            TrafficSpec::shuffle(),
            TrafficSpec::incast(8),
            TrafficSpec::hotspot(0.8, true),
            TrafficSpec::hotspot(0.35, false),
            TrafficSpec::incast(20).with_victim(VictimSpec::new(25, 30, 10_000, 500_000)),
            TrafficSpec::uniform().with_mix(Workload::W1, 0.25),
            TrafficSpec::shuffle()
                .with_victim(VictimSpec::new(1, 2, 777, 12_345))
                .with_mix(Workload::W5, 0.1),
        ] {
            round_trips(
                &ScenarioSpec::new(
                    "t",
                    FabricSpec::MultiTor { hosts: 40 },
                    Workload::W2,
                    0.5,
                    500,
                    7,
                )
                .with_traffic(traffic),
            );
        }
    }

    #[test]
    fn fault_vocabulary_round_trips() {
        let plan = FaultPlan::new()
            .link_flaps(LinkId::HostDownlink(HostId(0)), 300_000, 150_000, 600_000, 2)
            .receiver_pause(HostId(3), 500_000, 900_000)
            .rate_limit(LinkId::TorUplink { rack: 0, spine: 1 }, 100_000, 2_000_000, 10_000_000)
            .rack_outage(1, 400_000, 1_200_000)
            .spine_outage(0, 300_000, 900_000)
            .at(42, Fault::LinkDown(LinkId::SpineDownlink { spine: 1, rack: 0 }))
            .at(43, Fault::LinkUp(LinkId::HostUplink(HostId(7))));
        round_trips(
            &ScenarioSpec::new(
                "faulty",
                FabricSpec::LeafSpine { racks: 2, hosts_per_rack: 6, spines: 2 },
                Workload::W2,
                0.5,
                700,
                21,
            )
            .with_faults(plan),
        );
    }

    #[test]
    fn float_loads_round_trip_exactly() {
        for load in [0.1, 0.3333333333333333, 0.8, 0.955, 1.0, 0.05] {
            round_trips(&ScenarioSpec::new(
                "f",
                FabricSpec::SingleSwitch { hosts: 4 },
                Workload::W3,
                load,
                10,
                1,
            ));
        }
    }

    #[test]
    fn whitespace_in_names_is_sanitized() {
        let spec = ScenarioSpec::new(
            "two words",
            FabricSpec::SingleSwitch { hosts: 4 },
            Workload::W1,
            0.5,
            10,
            1,
        );
        let back = ScenarioSpec::parse_spec_line(&spec.to_spec_line()).unwrap();
        assert_eq!(back.name, "two_words");
    }

    #[test]
    fn defaulted_fields_may_be_omitted() {
        let spec =
            ScenarioSpec::parse_spec_line("name=a fabric=sw:8 wl=w2 load=0.5 msgs=100 seed=3")
                .unwrap();
        assert_eq!(spec.engine, EngineKind::Hierarchical);
        assert!(spec.traffic.is_default());
        assert!(spec.faults.is_empty());
    }

    #[test]
    fn parse_errors_name_the_offending_key_and_value() {
        let cases = [
            (
                "name=a fabric=nope:3 wl=W1 load=0.5 msgs=10 seed=1",
                "field `fabric`: unknown fabric kind `nope`",
            ),
            (
                "name=a fabric=sw:8 wl=W9 load=0.5 msgs=10 seed=1",
                "field `wl`: unknown workload `W9`",
            ),
            ("name=a fabric=sw:8 wl=W1 load=x msgs=10 seed=1", "field `load`: bad load `x`"),
            ("name=a fabric=sw:8 wl=W1 load=0.5 msgs=ten seed=1", "field `msgs`: bad msgs `ten`"),
            ("name=a fabric=sw:8 wl=W1 load=0.5 msgs=10 seed=-1", "field `seed`: bad seed `-1`"),
            (
                "name=a fabric=sw:8 wl=W1 load=0.5 msgs=10 seed=1 engine=quantum",
                "field `engine`: unknown engine `quantum`",
            ),
            (
                "name=a fabric=sw:8 wl=W1 load=0.5 msgs=10 seed=1 traffic=blizzard",
                "field `traffic`: unknown traffic pattern `blizzard`",
            ),
            // Regressions (found by the spec-line grammar fuzzer): these
            // used to panic inside `VictimSpec::new` instead of erroring.
            (
                "name=a fabric=sw:8 wl=W1 load=0.5 msgs=10 seed=1 traffic=uniform+victim:6:6:4:3",
                "field `traffic`: self-addressed victim flow in `victim:6:6:4:3`",
            ),
            (
                "name=a fabric=sw:8 wl=W1 load=0.5 msgs=10 seed=1 traffic=uniform+victim:1:2:4:0",
                "field `traffic`: zero victim period in `victim:1:2:4:0`",
            ),
            // Host ids wider than u32 must be rejected, not truncated.
            (
                "name=a fabric=sw:8 wl=W1 load=0.5 msgs=10 seed=1 \
                 traffic=uniform+victim:4294967296:2:4:3",
                "field `traffic`: bad victim host in `victim:4294967296:2:4:3`",
            ),
            (
                "name=a fabric=sw:8 wl=W1 load=0.5 msgs=10 seed=1 faults=12:explode:hup1",
                "field `faults`: unknown fault `explode:hup1`",
            ),
            (
                "name=a fabric=sw:8 wl=W1 load=0.5 msgs=10 seed=1 color=red",
                "unknown field `color` (value `red`)",
            ),
            ("name=a fabric=sw:8 wl=W1 msgs=10 seed=1", "missing required field `load`"),
            ("notafield", "bad field `notafield` (want k=v)"),
        ];
        for (line, want) in cases {
            let err = ScenarioSpec::parse_spec_line(line).expect_err(line);
            assert_eq!(err, want, "wrong error for `{line}`");
        }
    }

    #[test]
    fn hostile_lines_fail_loudly() {
        for bad in [
            "",
            "name=a",
            "name=a fabric=nope:3 wl=W1 load=0.5 msgs=10 seed=1",
            "name=a fabric=sw:8 wl=W9 load=0.5 msgs=10 seed=1",
            "name=a fabric=sw:8 wl=W1 load=x msgs=10 seed=1",
            "name=a fabric=sw:8 wl=W1 load=0.5 msgs=10 seed=1 engine=quantum",
            "name=a fabric=sw:8 wl=W1 load=0.5 msgs=10 seed=1 traffic=blizzard",
            "name=a fabric=sw:8 wl=W1 load=0.5 msgs=10 seed=1 faults=12:explode:hup1",
            "name=a fabric=sw:8 wl=W1 load=0.5 msgs=10 seed=1 color=red",
            "notafield",
        ] {
            assert!(ScenarioSpec::parse_spec_line(bad).is_err(), "`{bad}` should not parse");
        }
    }
}
