//! The paper's slowdown metric and its size-binned summaries.
//!
//! Slowdown is "the ratio of the actual time required to complete a
//! message/RPC divided by the best possible time for one of that size on
//! an unloaded network" (§5.1). Figures 8/9/12/13 plot p99 and p50
//! slowdown over an x-axis that is *linear in the total number of
//! messages* — each of the ten ticks covers 10% of messages. We summarize
//! with the same convention: messages sorted by size and cut into
//! equal-count bins.

use homa_sim::stats::percentile;
use homa_sim::DelayBreakdown;
use serde::{Deserialize, Serialize};

/// One delivered message/RPC observation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MsgRecord {
    /// Message size in bytes (for RPCs, the echoed payload size).
    pub size: u64,
    /// Injection time, nanoseconds.
    pub injected_ns: u64,
    /// Completion time, nanoseconds.
    pub completed_ns: u64,
    /// Best-possible completion time on an unloaded fabric, nanoseconds.
    pub unloaded_ns: u64,
    /// Queueing-delay attribution accumulated by the message's packets
    /// (zero unless the transport tracks it).
    pub delay: DelayBreakdown,
}

impl MsgRecord {
    /// Observed completion time in nanoseconds.
    pub fn latency_ns(&self) -> u64 {
        self.completed_ns - self.injected_ns
    }

    /// The slowdown ratio (≥ 1 in a well-calibrated experiment).
    pub fn slowdown(&self) -> f64 {
        self.latency_ns() as f64 / self.unloaded_ns.max(1) as f64
    }
}

/// Slowdown statistics for one size bin.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlowdownBin {
    /// Smallest message size in the bin.
    pub min_size: u64,
    /// Largest message size in the bin.
    pub max_size: u64,
    /// Number of messages.
    pub count: usize,
    /// Median slowdown.
    pub p50: f64,
    /// 99th-percentile slowdown.
    pub p99: f64,
    /// Mean slowdown.
    pub mean: f64,
}

/// A full size-binned slowdown summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlowdownSummary {
    /// Equal-message-count bins in ascending size order.
    pub bins: Vec<SlowdownBin>,
    /// Overall p99 slowdown.
    pub overall_p99: f64,
    /// Overall median slowdown.
    pub overall_p50: f64,
}

impl SlowdownSummary {
    /// Summarize `records` into `nbins` equal-count size bins.
    pub fn from_records(records: &[MsgRecord], nbins: usize) -> SlowdownSummary {
        assert!(nbins >= 1);
        let mut sorted: Vec<&MsgRecord> = records.iter().collect();
        sorted.sort_by_key(|r| r.size);
        let mut all: Vec<f64> = sorted.iter().map(|r| r.slowdown()).collect();
        let mut bins = Vec::with_capacity(nbins);
        if !sorted.is_empty() {
            let per = sorted.len().div_ceil(nbins);
            for chunk in sorted.chunks(per) {
                let mut s: Vec<f64> = chunk.iter().map(|r| r.slowdown()).collect();
                s.sort_by(|a, b| a.partial_cmp(b).expect("no NaN slowdowns"));
                bins.push(SlowdownBin {
                    min_size: chunk.first().expect("nonempty").size,
                    max_size: chunk.last().expect("nonempty").size,
                    count: chunk.len(),
                    p50: percentile(&s, 50.0),
                    p99: percentile(&s, 99.0),
                    mean: s.iter().sum::<f64>() / s.len() as f64,
                });
            }
        }
        all.sort_by(|a, b| a.partial_cmp(b).expect("no NaN slowdowns"));
        SlowdownSummary {
            bins,
            overall_p99: percentile(&all, 99.0),
            overall_p50: percentile(&all, 50.0),
        }
    }

    /// p99 slowdown restricted to the smallest `frac` of messages (the
    /// paper's "shortest 50% of messages" style statements, and the
    /// Figure 14 short-message selection).
    pub fn small_message_p99(records: &[MsgRecord], frac: f64) -> f64 {
        let mut sorted: Vec<&MsgRecord> = records.iter().collect();
        sorted.sort_by_key(|r| r.size);
        let take = ((sorted.len() as f64 * frac).ceil() as usize).max(1).min(sorted.len());
        let mut s: Vec<f64> = sorted[..take].iter().map(|r| r.slowdown()).collect();
        s.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        percentile(&s, 99.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(size: u64, lat: u64, unloaded: u64) -> MsgRecord {
        MsgRecord {
            size,
            injected_ns: 1_000,
            completed_ns: 1_000 + lat,
            unloaded_ns: unloaded,
            delay: DelayBreakdown::default(),
        }
    }

    #[test]
    fn slowdown_ratio() {
        let r = rec(100, 4_000, 2_000);
        assert!((r.slowdown() - 2.0).abs() < 1e-12);
        assert_eq!(r.latency_ns(), 4_000);
    }

    #[test]
    fn bins_are_equal_count_and_size_ordered() {
        let records: Vec<MsgRecord> = (1..=100).map(|i| rec(i * 10, 1_000 * i, 1_000)).collect();
        let s = SlowdownSummary::from_records(&records, 10);
        assert_eq!(s.bins.len(), 10);
        for b in &s.bins {
            assert_eq!(b.count, 10);
        }
        // Bins ascend in size and (here) in slowdown.
        for w in s.bins.windows(2) {
            assert!(w[0].max_size <= w[1].min_size);
            assert!(w[0].p50 < w[1].p50);
        }
    }

    #[test]
    fn overall_percentiles() {
        let records: Vec<MsgRecord> = (1..=1000).map(|i| rec(50, i, 1)).collect();
        let s = SlowdownSummary::from_records(&records, 4);
        assert!((s.overall_p50 - 500.5).abs() < 1.0);
        assert!(s.overall_p99 > 985.0 && s.overall_p99 <= 1000.0);
    }

    #[test]
    fn small_message_p99_uses_smallest() {
        let mut records: Vec<MsgRecord> = (0..50).map(|_| rec(10, 100, 100)).collect();
        records.extend((0..50).map(|_| rec(1_000_000, 100_000, 100)));
        let small = SlowdownSummary::small_message_p99(&records, 0.5);
        assert!((small - 1.0).abs() < 1e-9, "small messages all slowdown 1, got {small}");
    }

    #[test]
    fn empty_records_do_not_panic() {
        let s = SlowdownSummary::from_records(&[], 10);
        assert!(s.bins.is_empty());
        assert_eq!(s.overall_p99, 0.0);
    }
}
