//! The paper's slowdown metric and its size-binned summaries.
//!
//! Slowdown is "the ratio of the actual time required to complete a
//! message/RPC divided by the best possible time for one of that size on
//! an unloaded network" (§5.1). Figures 8/9/12/13 plot p99 and p50
//! slowdown over an x-axis that is *linear in the total number of
//! messages* — each of the ten ticks covers 10% of messages. We summarize
//! with the same convention: messages sorted by size and cut into
//! equal-count bins.

use homa_sim::stats::percentile;
use homa_sim::{DelayBreakdown, QuantileSketch};
use serde::{Deserialize, Serialize};

/// One delivered message/RPC observation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MsgRecord {
    /// Message size in bytes (for RPCs, the echoed payload size).
    pub size: u64,
    /// Injection time, nanoseconds.
    pub injected_ns: u64,
    /// Completion time, nanoseconds.
    pub completed_ns: u64,
    /// Best-possible completion time on an unloaded fabric, nanoseconds.
    pub unloaded_ns: u64,
    /// Queueing-delay attribution accumulated by the message's packets
    /// (zero unless the transport tracks it).
    pub delay: DelayBreakdown,
}

impl MsgRecord {
    /// Observed completion time in nanoseconds.
    pub fn latency_ns(&self) -> u64 {
        self.completed_ns - self.injected_ns
    }

    /// The slowdown ratio (≥ 1 in a well-calibrated experiment).
    pub fn slowdown(&self) -> f64 {
        self.latency_ns() as f64 / self.unloaded_ns.max(1) as f64
    }
}

/// Slowdown statistics for one size bin.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlowdownBin {
    /// Smallest message size in the bin.
    pub min_size: u64,
    /// Largest message size in the bin.
    pub max_size: u64,
    /// Number of messages.
    pub count: usize,
    /// Median slowdown.
    pub p50: f64,
    /// 99th-percentile slowdown.
    pub p99: f64,
    /// Mean slowdown.
    pub mean: f64,
}

/// A full size-binned slowdown summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlowdownSummary {
    /// Equal-message-count bins in ascending size order.
    pub bins: Vec<SlowdownBin>,
    /// Overall p99 slowdown.
    pub overall_p99: f64,
    /// Overall median slowdown.
    pub overall_p50: f64,
}

/// One size-ordered pass over `records`: `(size, slowdown)` pairs sorted
/// by size (stable, so equal sizes keep injection order). Shared by
/// [`SlowdownSummary::from_records`] and
/// [`SlowdownSummary::small_message_p99`] so each computes every
/// slowdown exactly once and sorts by size exactly once.
fn sorted_size_slowdowns(records: &[MsgRecord]) -> Vec<(u64, f64)> {
    let mut v: Vec<(u64, f64)> = records.iter().map(|r| (r.size, r.slowdown())).collect();
    v.sort_by_key(|e| e.0);
    v
}

impl SlowdownSummary {
    /// Summarize `records` into `nbins` equal-count size bins.
    pub fn from_records(records: &[MsgRecord], nbins: usize) -> SlowdownSummary {
        assert!(nbins >= 1);
        let by_size = sorted_size_slowdowns(records);
        let mut bins = Vec::with_capacity(nbins);
        let mut scratch: Vec<f64> = Vec::new();
        if !by_size.is_empty() {
            let per = by_size.len().div_ceil(nbins);
            scratch.reserve(per);
            for chunk in by_size.chunks(per) {
                scratch.clear();
                scratch.extend(chunk.iter().map(|&(_, s)| s));
                scratch.sort_by(|a, b| a.partial_cmp(b).expect("no NaN slowdowns"));
                bins.push(SlowdownBin {
                    min_size: chunk.first().expect("nonempty").0,
                    max_size: chunk.last().expect("nonempty").0,
                    count: chunk.len(),
                    p50: percentile(&scratch, 50.0),
                    p99: percentile(&scratch, 99.0),
                    mean: scratch.iter().sum::<f64>() / scratch.len() as f64,
                });
            }
        }
        let mut all: Vec<f64> = by_size.into_iter().map(|(_, s)| s).collect();
        all.sort_by(|a, b| a.partial_cmp(b).expect("no NaN slowdowns"));
        SlowdownSummary {
            bins,
            overall_p99: percentile(&all, 99.0),
            overall_p50: percentile(&all, 50.0),
        }
    }

    /// p99 slowdown restricted to the smallest `frac` of messages (the
    /// paper's "shortest 50% of messages" style statements, and the
    /// Figure 14 short-message selection).
    pub fn small_message_p99(records: &[MsgRecord], frac: f64) -> f64 {
        let by_size = sorted_size_slowdowns(records);
        let take = ((by_size.len() as f64 * frac).ceil() as usize).max(1).min(by_size.len());
        let mut s: Vec<f64> = by_size[..take].iter().map(|&(_, s)| s).collect();
        s.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        percentile(&s, 99.0)
    }
}

/// Per-size-bucket slowdown state inside a [`SlowdownSketch`].
#[derive(Debug, Clone)]
struct SizeBucket {
    min_size: u64,
    max_size: u64,
    slowdowns: QuantileSketch,
}

/// Streaming replacement for retaining every [`MsgRecord`]: memory is
/// O(occupied sketch bins), not O(messages), which is what lets a
/// 1k-host run with tens of thousands of messages keep a flat footprint.
///
/// Sizes are hashed into logarithmic buckets (relative width `alpha`)
/// and each bucket carries a [`QuantileSketch`] of slowdowns, so
/// [`summary`](SlowdownSketch::summary) can rebuild the paper's
/// equal-message-count size bins after the fact by walking buckets in
/// ascending size order. Quantiles carry the sketch's `alpha` relative
/// error; bin *edges* land on size-bucket boundaries, so each bin holds
/// its target message count only to within one bucket's population.
/// Counts, means, and size extrema are exact.
#[derive(Debug, Clone)]
pub struct SlowdownSketch {
    alpha: f64,
    ln_gamma: f64,
    by_size: std::collections::BTreeMap<i32, SizeBucket>,
    overall: QuantileSketch,
}

impl SlowdownSketch {
    /// A sketch with relative quantile error at most `alpha`.
    pub fn new(alpha: f64) -> SlowdownSketch {
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        SlowdownSketch {
            alpha,
            ln_gamma: gamma.ln(),
            by_size: Default::default(),
            overall: QuantileSketch::new(alpha),
        }
    }

    fn size_key(&self, size: u64) -> i32 {
        if size <= 1 {
            0
        } else {
            ((size as f64).ln() / self.ln_gamma).ceil() as i32
        }
    }

    /// Record one delivered message of `size` bytes with the given
    /// slowdown ratio.
    pub fn push(&mut self, size: u64, slowdown: f64) {
        self.overall.push(slowdown);
        let b = self.by_size.entry(self.size_key(size)).or_insert_with(|| SizeBucket {
            min_size: size,
            max_size: size,
            slowdowns: QuantileSketch::new(self.alpha),
        });
        b.min_size = b.min_size.min(size);
        b.max_size = b.max_size.max(size);
        b.slowdowns.push(slowdown);
    }

    /// Messages recorded so far (exact).
    pub fn count(&self) -> u64 {
        self.overall.count()
    }

    /// Fold another sketch into this one (same `alpha` required).
    pub fn merge(&mut self, other: &SlowdownSketch) {
        self.overall.merge(&other.overall);
        for (&key, ob) in &other.by_size {
            let b = self.by_size.entry(key).or_insert_with(|| SizeBucket {
                min_size: ob.min_size,
                max_size: ob.max_size,
                slowdowns: QuantileSketch::new(self.alpha),
            });
            b.min_size = b.min_size.min(ob.min_size);
            b.max_size = b.max_size.max(ob.max_size);
            b.slowdowns.merge(&ob.slowdowns);
        }
    }

    /// Rebuild the equal-count size-bin summary from the sketch.
    pub fn summary(&self, nbins: usize) -> SlowdownSummary {
        assert!(nbins >= 1);
        let total = self.count();
        let mut bins = Vec::new();
        if total > 0 {
            let per = total.div_ceil(nbins as u64);
            let mut cur: Option<SizeBucket> = None;
            for b in self.by_size.values() {
                match &mut cur {
                    None => cur = Some(b.clone()),
                    Some(c) => {
                        c.min_size = c.min_size.min(b.min_size);
                        c.max_size = c.max_size.max(b.max_size);
                        c.slowdowns.merge(&b.slowdowns);
                    }
                }
                let filled = cur.as_ref().expect("just set").slowdowns.count() >= per;
                if filled {
                    bins.push(Self::finish_bin(cur.take().expect("nonempty")));
                }
            }
            if let Some(c) = cur {
                bins.push(Self::finish_bin(c));
            }
        }
        SlowdownSummary {
            bins,
            overall_p99: self.overall.percentile(99.0),
            overall_p50: self.overall.percentile(50.0),
        }
    }

    fn finish_bin(b: SizeBucket) -> SlowdownBin {
        SlowdownBin {
            min_size: b.min_size,
            max_size: b.max_size,
            count: b.slowdowns.count() as usize,
            p50: b.slowdowns.percentile(50.0),
            p99: b.slowdowns.percentile(99.0),
            mean: b.slowdowns.mean(),
        }
    }

    /// p99 slowdown over (approximately) the smallest `frac` of
    /// messages; the cut lands on a size-bucket boundary.
    pub fn small_p99(&self, frac: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let want = ((total as f64 * frac).ceil() as u64).max(1);
        let mut merged: Option<QuantileSketch> = None;
        for b in self.by_size.values() {
            match &mut merged {
                None => merged = Some(b.slowdowns.clone()),
                Some(m) => m.merge(&b.slowdowns),
            }
            if merged.as_ref().expect("just set").count() >= want {
                break;
            }
        }
        merged.map(|m| m.percentile(99.0)).unwrap_or(0.0)
    }
}

impl Default for SlowdownSketch {
    /// 1% relative quantile error — well inside the repro-gate
    /// tolerances used by `repro compare`.
    fn default() -> Self {
        SlowdownSketch::new(0.01)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(size: u64, lat: u64, unloaded: u64) -> MsgRecord {
        MsgRecord {
            size,
            injected_ns: 1_000,
            completed_ns: 1_000 + lat,
            unloaded_ns: unloaded,
            delay: DelayBreakdown::default(),
        }
    }

    #[test]
    fn slowdown_ratio() {
        let r = rec(100, 4_000, 2_000);
        assert!((r.slowdown() - 2.0).abs() < 1e-12);
        assert_eq!(r.latency_ns(), 4_000);
    }

    #[test]
    fn bins_are_equal_count_and_size_ordered() {
        let records: Vec<MsgRecord> = (1..=100).map(|i| rec(i * 10, 1_000 * i, 1_000)).collect();
        let s = SlowdownSummary::from_records(&records, 10);
        assert_eq!(s.bins.len(), 10);
        for b in &s.bins {
            assert_eq!(b.count, 10);
        }
        // Bins ascend in size and (here) in slowdown.
        for w in s.bins.windows(2) {
            assert!(w[0].max_size <= w[1].min_size);
            assert!(w[0].p50 < w[1].p50);
        }
    }

    #[test]
    fn overall_percentiles() {
        let records: Vec<MsgRecord> = (1..=1000).map(|i| rec(50, i, 1)).collect();
        let s = SlowdownSummary::from_records(&records, 4);
        assert!((s.overall_p50 - 500.5).abs() < 1.0);
        assert!(s.overall_p99 > 985.0 && s.overall_p99 <= 1000.0);
    }

    #[test]
    fn small_message_p99_uses_smallest() {
        let mut records: Vec<MsgRecord> = (0..50).map(|_| rec(10, 100, 100)).collect();
        records.extend((0..50).map(|_| rec(1_000_000, 100_000, 100)));
        let small = SlowdownSummary::small_message_p99(&records, 0.5);
        assert!((small - 1.0).abs() < 1e-9, "small messages all slowdown 1, got {small}");
    }

    #[test]
    fn empty_records_do_not_panic() {
        let s = SlowdownSummary::from_records(&[], 10);
        assert!(s.bins.is_empty());
        assert_eq!(s.overall_p99, 0.0);
    }

    /// Pins the exact percentile outputs of the shared single-sort path,
    /// so any future refactor of `from_records`/`small_message_p99` that
    /// shifts interpolation or bin boundaries trips here.
    #[test]
    fn summary_percentiles_are_pinned() {
        // Slowdown of record i is exactly i (i = 1..=100); sizes ascend
        // with i so size bins are slowdown bins.
        let records: Vec<MsgRecord> = (1..=100).map(|i| rec(i * 10, 1_000 * i, 1_000)).collect();
        let s = SlowdownSummary::from_records(&records, 10);
        // Bin 0 holds slowdowns 1..=10: linear-interpolated nearest ranks.
        assert!((s.bins[0].p50 - 5.5).abs() < 1e-9);
        assert!((s.bins[0].p99 - 9.91).abs() < 1e-9);
        assert!((s.bins[0].mean - 5.5).abs() < 1e-9);
        // Overall: slowdowns 1..=100.
        assert!((s.overall_p50 - 50.5).abs() < 1e-9);
        assert!((s.overall_p99 - 99.01).abs() < 1e-9);
        // Smallest 20%: slowdowns 1..=20.
        let small = SlowdownSummary::small_message_p99(&records, 0.2);
        assert!((small - 19.81).abs() < 1e-9, "got {small}");
    }

    #[test]
    fn sketch_tracks_exact_summary_within_alpha() {
        let records: Vec<MsgRecord> =
            (1..=2000).map(|i| rec(i * 7 % 9_000 + 1, 900 + (i * 37) % 4_000, 1_000)).collect();
        let exact = SlowdownSummary::from_records(&records, 10);
        let mut sk = SlowdownSketch::default();
        for r in &records {
            sk.push(r.size, r.slowdown());
        }
        assert_eq!(sk.count(), 2000);
        let approx = sk.summary(10);
        let rel = |a: f64, b: f64| (a - b).abs() / b.max(1e-12);
        // Overall quantiles carry only the sketch's alpha error.
        assert!(rel(approx.overall_p50, exact.overall_p50) < 0.011);
        assert!(rel(approx.overall_p99, exact.overall_p99) < 0.011);
        // Binned views also agree coarsely despite bucket-edge binning.
        assert!(!approx.bins.is_empty() && approx.bins.len() <= 11);
        let count: usize = approx.bins.iter().map(|b| b.count).sum();
        assert_eq!(count, 2000, "sketch bins must partition all messages");
        let small_exact = SlowdownSummary::small_message_p99(&records, 0.5);
        let small_approx = sk.small_p99(0.5);
        assert!(
            rel(small_approx, small_exact) < 0.15,
            "small p99: sketch {small_approx} vs exact {small_exact}"
        );
    }

    #[test]
    fn sketch_merge_matches_single_stream() {
        let mut a = SlowdownSketch::default();
        let mut b = SlowdownSketch::default();
        let mut whole = SlowdownSketch::default();
        for i in 1..=500u64 {
            let (size, slow) = (i * 13 % 2_000 + 1, 1.0 + (i % 90) as f64 / 10.0);
            whole.push(size, slow);
            if i % 2 == 0 {
                a.push(size, slow)
            } else {
                b.push(size, slow)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        let (sa, sw) = (a.summary(10), whole.summary(10));
        assert_eq!(sa.overall_p99, sw.overall_p99);
        assert_eq!(sa.bins.len(), sw.bins.len());
    }
}
