//! Declarative experiment scenarios — the driving API.
//!
//! A [`ScenarioSpec`] names everything that makes a run what it is —
//! fabric shape, workload, offered load, message budget, seed, event
//! engine, traffic pattern, fault schedule — in one value, and is the
//! *only* way to start an experiment: [`ScenarioSpec::run_oneway`],
//! [`ScenarioSpec::run_rpc_echo`] and [`ScenarioSpec::run_incast`] are
//! the three drivers. The `perf-smoke` CI gate, the determinism tests,
//! the fuzzers and the nightly long-haul matrix all describe their runs
//! this way, so "the 100-host W4 run at 80% load with seed 42" is a
//! value that can be logged, compared, fuzzed, shrunk and replayed
//! exactly — including from its one-line text form
//! ([`ScenarioSpec::to_spec_line`] / [`ScenarioSpec::parse_spec_line`]).

use crate::driver::{self, IncastOpts, IncastResult, OnewayOpts, OnewayResult, RpcOpts, RpcResult};
use homa_sim::{
    EngineKind, FaultPlan, HostId, NetworkConfig, PacketMeta, QueueDiscipline, Topology, Transport,
};
use homa_workloads::{TrafficSpec, Workload};

/// The fabric a scenario runs on, by shape rather than by a prebuilt
/// [`Topology`] — so specs stay small, printable and comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricSpec {
    /// `n` hosts on one switch ([`Topology::single_switch`]).
    SingleSwitch {
        /// Number of hosts.
        hosts: u32,
    },
    /// An explicit leaf–spine shape ([`Topology::scaled_fabric`]).
    LeafSpine {
        /// Number of racks.
        racks: u32,
        /// Hosts per rack.
        hosts_per_rack: u32,
        /// Number of spine switches.
        spines: u32,
    },
    /// A multi-TOR fabric sized by host count ([`Topology::multi_tor`]).
    MultiTor {
        /// Total hosts: ≥ 16 and divisible by 10, 16 or 8, so the fabric
        /// has at least two racks.
        hosts: u32,
    },
    /// The paper's Figure 11 fabric: 144 hosts, 9 racks, 4 spines.
    Paper,
    /// A three-tier k-ary fat tree ([`Topology::fat_tree`]): `k³/4`
    /// hosts. `FatTree { k: 16 }` is the 1024-host scale fabric.
    FatTree {
        /// Fat-tree arity (even, ≥ 4).
        k: u32,
    },
}

impl FabricSpec {
    /// Materialize the topology.
    pub fn topology(&self) -> Topology {
        match *self {
            FabricSpec::SingleSwitch { hosts } => Topology::single_switch(hosts),
            FabricSpec::LeafSpine { racks, hosts_per_rack, spines } => {
                Topology::scaled_fabric(racks, hosts_per_rack, spines)
            }
            FabricSpec::MultiTor { hosts } => Topology::multi_tor(hosts),
            FabricSpec::Paper => Topology::paper_fabric(),
            FabricSpec::FatTree { k } => Topology::fat_tree(k),
        }
    }

    /// Total hosts in the fabric.
    pub fn hosts(&self) -> u32 {
        match *self {
            FabricSpec::SingleSwitch { hosts } | FabricSpec::MultiTor { hosts } => hosts,
            FabricSpec::LeafSpine { racks, hosts_per_rack, .. } => racks * hosts_per_rack,
            FabricSpec::Paper => 144,
            FabricSpec::FatTree { k } => k * k * k / 4,
        }
    }
}

/// One fully-specified experiment: everything a run is a pure function
/// of, minus the transport (which the caller supplies, so one spec can be
/// replayed across protocols and engines).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Short machine-friendly name (`w4_80_100h`, no whitespace); keys
    /// the perf-smoke baseline comparison and leads the spec line.
    pub name: String,
    /// Fabric shape.
    pub fabric: FabricSpec,
    /// Message-size workload (the paper's W1–W5).
    pub workload: Workload,
    /// Offered load as a fraction of aggregate host-link bandwidth.
    pub load: f64,
    /// Messages (or RPCs, or concurrent incast requests) to inject.
    pub messages: u64,
    /// Seed for all randomness in the run.
    pub seed: u64,
    /// Event engine to run on.
    pub engine: EngineKind,
    /// Source–destination pattern, victim overlay and workload mix. The
    /// default is the paper's uniform-random all-to-all, which replays
    /// pre-existing specs event-for-event.
    pub traffic: TrafficSpec,
    /// Declarative fault schedule (link flaps, receiver pauses, rate
    /// limits). Empty by default: no events are scheduled and runs are
    /// unchanged.
    pub faults: FaultPlan,
}

impl ScenarioSpec {
    /// A spec with the default (hierarchical) engine.
    pub fn new(
        name: impl Into<String>,
        fabric: FabricSpec,
        workload: Workload,
        load: f64,
        messages: u64,
        seed: u64,
    ) -> Self {
        ScenarioSpec {
            name: name.into(),
            fabric,
            workload,
            load,
            messages,
            seed,
            engine: EngineKind::default(),
            traffic: TrafficSpec::default(),
            faults: FaultPlan::default(),
        }
    }

    /// An incast spec: `concurrent` parallel RPCs per round converging on
    /// host 0. Incast is closed-loop, so `load` is fixed at `0.0` and the
    /// workload field is an unused placeholder ([`Workload::W4`]) — the
    /// response size lives in [`IncastOpts::resp_len`].
    pub fn incast(name: impl Into<String>, fabric: FabricSpec, concurrent: u64, seed: u64) -> Self {
        ScenarioSpec::new(name, fabric, Workload::W4, 0.0, concurrent, seed)
    }

    /// The same scenario on a different event engine.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// The same scenario under a different traffic pattern.
    pub fn with_traffic(mut self, traffic: TrafficSpec) -> Self {
        self.traffic = traffic;
        self
    }

    /// The same scenario with a fault schedule.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The same scenario at a different offered load (capacity probes).
    pub fn with_load(mut self, load: f64) -> Self {
        self.load = load;
        self
    }

    /// The same scenario with a different message budget (shrinking).
    pub fn with_messages(mut self, messages: u64) -> Self {
        self.messages = messages;
        self
    }

    /// The same scenario under a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The same scenario under a different name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Materialize the topology.
    pub fn topology(&self) -> Topology {
        self.fabric.topology()
    }

    /// Fabric configuration for this spec: seeded, on the spec's engine,
    /// with the default strict-priority queues.
    pub fn netcfg(&self) -> NetworkConfig {
        self.netcfg_with(None)
    }

    /// Fabric configuration with a protocol-specific queue discipline on
    /// every port class (pFabric, PIAS, NDP), or the default when `None`.
    pub fn netcfg_with(&self, queues: Option<QueueDiscipline>) -> NetworkConfig {
        let base = match queues {
            Some(q) => NetworkConfig::uniform(self.seed, q),
            None => NetworkConfig { seed: self.seed, ..NetworkConfig::default() },
        };
        base.with_engine(self.engine)
    }

    /// Run the all-to-all one-way experiment this spec describes (the
    /// §5.2 setup): `make` builds one transport per host, `queues`
    /// overrides the switch queue discipline (pFabric, PIAS, NDP), and
    /// `opts` holds the measurement knobs. The spec's traffic pattern and
    /// fault schedule are borrowed, not copied, for the run.
    pub fn run_oneway<M, T>(
        &self,
        queues: Option<QueueDiscipline>,
        make: impl FnMut(HostId) -> T,
        opts: &OnewayOpts,
    ) -> OnewayResult
    where
        M: PacketMeta,
        T: Transport<M>,
    {
        driver::oneway(self, queues, make, opts)
    }

    /// Run the §5.1 echo-RPC experiment this spec describes;
    /// `self.messages` is the RPC budget.
    pub fn run_rpc_echo<M, T>(
        &self,
        queues: Option<QueueDiscipline>,
        make: impl FnMut(HostId) -> T,
        opts: &RpcOpts,
    ) -> RpcResult
    where
        M: PacketMeta,
        T: Transport<M>,
    {
        driver::rpc_echo(self, queues, make, opts)
    }

    /// Run the Figure 10 incast this spec describes: `self.messages`
    /// concurrent RPCs per round converging on host 0. Requires an
    /// incast-shaped spec (default traffic, zero load — see
    /// [`ScenarioSpec::incast`]); the fault schedule is installed like
    /// the other drivers'.
    pub fn run_incast<M, T>(
        &self,
        queues: Option<QueueDiscipline>,
        make: impl FnMut(HostId) -> T,
        opts: &IncastOpts,
    ) -> IncastResult
    where
        M: PacketMeta,
        T: Transport<M>,
    {
        driver::incast(self, queues, make, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homa::HomaConfig;
    use homa_baselines::HomaSimTransport;

    #[test]
    fn fabric_specs_materialize() {
        assert_eq!(FabricSpec::SingleSwitch { hosts: 8 }.topology().num_hosts(), 8);
        assert_eq!(FabricSpec::MultiTor { hosts: 100 }.topology().num_hosts(), 100);
        assert_eq!(FabricSpec::Paper.topology().num_hosts(), 144);
        let ls = FabricSpec::LeafSpine { racks: 3, hosts_per_rack: 8, spines: 2 };
        assert_eq!(ls.topology().num_hosts(), 24);
        assert_eq!(ls.hosts(), 24);
        assert_eq!(FabricSpec::Paper.hosts(), 144);
        let ft = FabricSpec::FatTree { k: 4 };
        assert_eq!(ft.topology().num_hosts(), 16);
        assert_eq!(ft.hosts(), 16);
        assert_eq!(FabricSpec::FatTree { k: 16 }.hosts(), 1024);
    }

    #[test]
    fn spec_drives_oneway_run() {
        let spec = ScenarioSpec::new(
            "smoke",
            FabricSpec::SingleSwitch { hosts: 6 },
            Workload::W2,
            0.5,
            120,
            3,
        );
        let res = spec.run_oneway(
            None,
            |h| HomaSimTransport::new(h, HomaConfig::default()),
            &OnewayOpts::default(),
        );
        assert_eq!(res.injected, 120);
        assert_eq!(res.delivered, 120);
    }

    #[test]
    fn default_spec_has_inert_traffic_and_faults() {
        let spec = ScenarioSpec::new(
            "plain",
            FabricSpec::SingleSwitch { hosts: 4 },
            Workload::W1,
            0.5,
            10,
            1,
        );
        assert!(spec.traffic.is_default());
        assert!(spec.faults.is_empty());
    }

    #[test]
    fn traffic_and_fault_spec_drive_a_scenario_run() {
        use homa_sim::{FaultPlan, HostId, LinkId};
        use homa_workloads::TrafficSpec;
        let spec = ScenarioSpec::new(
            "incast_flap",
            FabricSpec::SingleSwitch { hosts: 10 },
            Workload::W2,
            0.4,
            200,
            5,
        )
        .with_traffic(TrafficSpec::incast(6))
        .with_faults(
            FaultPlan::new()
                .link_flaps(LinkId::HostDownlink(HostId(0)), 50_000, 60_000, 200_000, 2)
                .receiver_pause(HostId(2), 10_000, 80_000),
        );
        let res = spec.run_oneway(
            None,
            |h| HomaSimTransport::new(h, HomaConfig::default()),
            &OnewayOpts::default(),
        );
        assert_eq!(res.injected, 200);
        assert_eq!(res.stats.faults_applied, 6);
        assert_eq!(res.delivered + res.aborted + res.lost, 200);
        assert!(res.stats.fault_drops > 0, "flap never bit");
        assert!(res.delivered >= 120, "delivered only {}", res.delivered);
    }

    #[test]
    fn fat_tree_spec_drives_oneway_run_on_all_engines() {
        let run = |engine| {
            let spec =
                ScenarioSpec::new("ft", FabricSpec::FatTree { k: 4 }, Workload::W2, 0.5, 150, 13)
                    .with_engine(engine);
            let res = spec.run_oneway(
                None,
                |h| HomaSimTransport::new(h, HomaConfig::default()),
                &OnewayOpts::default(),
            );
            assert_eq!(res.injected, 150);
            assert_eq!(res.delivered, 150);
            assert!(res.records.is_empty(), "records retained without opt-in");
            assert_eq!(res.sketch.count(), 150);
            (res.duration.as_nanos(), res.sketch.summary(10).overall_p99.to_bits())
        };
        let base = run(EngineKind::Hierarchical);
        assert_eq!(run(EngineKind::LegacyHeap), base);
        assert_eq!(run(EngineKind::ParallelHier { threads: 2, batch: 0 }), base);
    }

    #[test]
    fn spec_engine_selection_is_invisible_in_results() {
        let run = |engine| {
            let spec = ScenarioSpec::new(
                "ab",
                FabricSpec::LeafSpine { racks: 2, hosts_per_rack: 4, spines: 2 },
                Workload::W1,
                0.6,
                200,
                9,
            )
            .with_engine(engine);
            let res = spec.run_oneway(
                None,
                |h| HomaSimTransport::new(h, HomaConfig::default()),
                &OnewayOpts::default().with_records(),
            );
            res.records.iter().map(|r| (r.size, r.completed_ns)).collect::<Vec<_>>()
        };
        assert_eq!(run(EngineKind::Hierarchical), run(EngineKind::LegacyHeap));
    }
}
