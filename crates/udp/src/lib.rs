//! # homa-udp — Homa over real UDP sockets
//!
//! A threaded driver that runs the [`homa`] protocol core over
//! `std::net::UdpSocket`, carrying real payload bytes with the
//! [`homa_wire`] binary encoding. This is the repository's analogue of
//! the paper's RAMCloud/DPDK implementation (§4): where the paper
//! bypasses the kernel and programs NIC priority queues, we use ordinary
//! sockets and map Homa's packet priorities to DSCP code points (see
//! [`node::priority_to_dscp`]) — commodity switches can be configured to
//! honour them. The protocol logic (grants, priorities,
//! overcommitment, RESEND/BUSY recovery, at-least-once RPCs) is the
//! *same code* that runs packet-accurately in the simulator.
//!
//! ## Quick start
//!
//! ```no_run
//! use homa::packets::PeerId;
//! use homa_udp::{HomaUdpNode, UdpConfig, UdpEvent};
//!
//! let server = HomaUdpNode::bind(PeerId(1), "127.0.0.1:7001", UdpConfig::default()).unwrap();
//! let client = HomaUdpNode::bind(PeerId(0), "127.0.0.1:7000", UdpConfig::default()).unwrap();
//! client.add_peer(PeerId(1), "127.0.0.1:7001".parse().unwrap());
//! server.add_peer(PeerId(0), "127.0.0.1:7000".parse().unwrap());
//!
//! client.call(PeerId(1), b"ping".to_vec(), 1).unwrap();
//! match server.events().recv().unwrap() {
//!     UdpEvent::Request { from, rpc, data } => server.respond(from, rpc, data).unwrap(),
//!     other => panic!("unexpected {other:?}"),
//! }
//! match client.events().recv().unwrap() {
//!     UdpEvent::Response { data, .. } => assert_eq!(data, b"ping"),
//!     other => panic!("unexpected {other:?}"),
//! }
//! ```
//!
//! ## Paper map
//!
//! | module | paper section |
//! |---|---|
//! | [`node`] | §4's implementation layer: socket I/O threads, pacing, DSCP priority mapping, RPC surface |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod node;

pub use node::{HomaUdpNode, RunSummary, UdpConfig, UdpEvent};
