//! The threaded UDP driver around [`HomaEndpoint`].

use crossbeam_channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use homa::packets::{Dir, HomaPacket, MsgKey, PeerId};
use homa::{HomaConfig, HomaEndpoint, HomaEvent};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct UdpConfig {
    /// Protocol configuration.
    pub homa: HomaConfig,
    /// Socket read timeout / driver loop cadence.
    pub poll_interval: Duration,
    /// Maximum packets transmitted per driver-loop turn (keeps the
    /// effective NIC queue short, mirroring §4's two-packet cap).
    pub tx_burst: usize,
    /// Bound on the application event channel. An application that stops
    /// consuming [`UdpEvent`]s no longer grows the queue without limit:
    /// once `event_channel_cap` events are queued, further events are
    /// dropped with a `WouldBlock`-style signal counted in
    /// [`HomaUdpNode::events_dropped`]. Note the drop is at the
    /// *application* boundary: the protocol may already have
    /// acknowledged a message whose `Message` event is shed, so a
    /// latency-insensitive consumer that cannot tolerate shedding
    /// should poll `events_dropped` (or set `0` = unbounded, the
    /// pre-backpressure behavior).
    pub event_channel_cap: usize,
}

impl Default for UdpConfig {
    fn default() -> Self {
        UdpConfig {
            homa: HomaConfig {
                // Loopback/kernel RTTs are far larger than a datacenter
                // fabric; keep the paper's byte constants but stretch the
                // loss timers.
                resend_interval_ns: 20_000_000, // 20 ms
                ..HomaConfig::default()
            },
            poll_interval: Duration::from_micros(500),
            tx_burst: 64,
            event_channel_cap: 1024,
        }
    }
}

/// Application events surfaced by the node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UdpEvent {
    /// A one-way message arrived.
    Message {
        /// The sender.
        from: PeerId,
        /// Sender-supplied tag.
        tag: u64,
        /// Message payload.
        data: Vec<u8>,
    },
    /// An RPC request arrived; respond via [`HomaUdpNode::respond`].
    Request {
        /// The client.
        from: PeerId,
        /// RPC handle to pass to `respond`.
        rpc: u64,
        /// Request payload.
        data: Vec<u8>,
    },
    /// An RPC we issued completed.
    Response {
        /// The server.
        from: PeerId,
        /// The tag passed to [`HomaUdpNode::call`].
        tag: u64,
        /// Response payload.
        data: Vec<u8>,
    },
    /// An RPC or message failed permanently.
    Aborted {
        /// Peer of the failed exchange.
        peer: PeerId,
        /// Tag of the failed operation.
        tag: u64,
    },
}

/// Point-in-time driver counters for one node — the run summary printed
/// (or asserted on) when a node winds down. The load-bearing field is
/// `events_dropped`: a non-zero value means the application fell behind
/// the bounded event channel and messages were shed at the delivery
/// boundary (see [`UdpConfig::event_channel_cap`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// The node's identity.
    pub peer: PeerId,
    /// Events currently queued for the application.
    pub events_queued: usize,
    /// Events dropped because the bounded channel was full.
    pub events_dropped: u64,
    /// Outbound payload buffers still retained (in flight or lingering).
    pub out_payloads: usize,
}

impl std::fmt::Display for RunSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "node {}: {} events queued, {} dropped (channel overflow), {} out-payloads retained",
            self.peer.0, self.events_queued, self.events_dropped, self.out_payloads
        )
    }
}

/// Map a Homa priority level (0–7) to a DSCP code point. Homa's eight
/// levels map onto the class-selector code points CS0–CS7; deployments
/// configure their switches to serve them as strict priorities (the
/// kernel-bypass implementation in the paper programs the NIC/switch
/// directly instead).
pub fn priority_to_dscp(prio: u8) -> u8 {
    (prio.min(7)) << 3
}

/// A receive-side packet filter (test hook for loss injection).
type RxDropFilter = Box<dyn FnMut(&HomaPacket) -> bool + Send>;

struct Shared {
    ep: HomaEndpoint,
    /// Payload store for outbound messages.
    out_payloads: HashMap<MsgKey, Arc<Vec<u8>>>,
    /// Reassembly buffers for inbound messages.
    in_buffers: HashMap<MsgKey, Vec<u8>>,
    /// Peer address table.
    peers: HashMap<PeerId, SocketAddr>,
    addr_to_peer: HashMap<SocketAddr, PeerId>,
    /// Test hook: drop incoming packets matching the filter.
    rx_drop: Option<RxDropFilter>,
}

/// One Homa endpoint bound to a UDP socket, serviced by a background
/// thread.
pub struct HomaUdpNode {
    me: PeerId,
    socket: UdpSocket,
    shared: Mutex<Shared>,
    events_tx: Sender<UdpEvent>,
    events_rx: Receiver<UdpEvent>,
    /// Events dropped because the bounded event channel was full (the
    /// driver's `WouldBlock` backpressure signal).
    events_dropped: std::sync::atomic::AtomicU64,
    stop: AtomicBool,
}

impl HomaUdpNode {
    /// Bind a node with identity `me` to `addr` and start its driver
    /// thread.
    pub fn bind<A: ToSocketAddrs>(me: PeerId, addr: A, cfg: UdpConfig) -> io::Result<Arc<Self>> {
        let socket = UdpSocket::bind(addr)?;
        socket.set_read_timeout(Some(cfg.poll_interval))?;
        let (events_tx, events_rx) =
            if cfg.event_channel_cap > 0 { bounded(cfg.event_channel_cap) } else { unbounded() };
        let node = Arc::new(HomaUdpNode {
            me,
            socket,
            shared: Mutex::new(Shared {
                ep: HomaEndpoint::new(me, cfg.homa.clone()),
                out_payloads: HashMap::new(),
                in_buffers: HashMap::new(),
                peers: HashMap::new(),
                addr_to_peer: HashMap::new(),
                rx_drop: None,
            }),
            events_tx,
            events_rx,
            events_dropped: std::sync::atomic::AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        let driver = Arc::clone(&node);
        std::thread::Builder::new()
            .name(format!("homa-udp-{}", me.0))
            .spawn(move || driver.run(cfg))
            .expect("spawn driver thread");
        Ok(node)
    }

    /// The local socket address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Register a peer's address.
    pub fn add_peer(&self, peer: PeerId, addr: SocketAddr) {
        let mut s = self.shared.lock();
        s.peers.insert(peer, addr);
        s.addr_to_peer.insert(addr, peer);
    }

    /// Install a receive-side drop filter (test hook for loss injection).
    pub fn set_rx_drop_filter(&self, f: impl FnMut(&HomaPacket) -> bool + Send + 'static) {
        self.shared.lock().rx_drop = Some(Box::new(f));
    }

    /// Send a one-way message.
    pub fn send_message(&self, dst: PeerId, data: Vec<u8>, tag: u64) -> io::Result<u64> {
        let mut s = self.shared.lock();
        if !s.peers.contains_key(&dst) {
            return Err(io::Error::new(io::ErrorKind::NotFound, "unknown peer"));
        }
        let seq = s.ep.send_message(now_ns(), dst, data.len() as u64, tag);
        let key = MsgKey { origin: self.me, seq, dir: Dir::Oneway };
        s.out_payloads.insert(key, Arc::new(data));
        drop(s);
        self.pump();
        Ok(seq)
    }

    /// Issue an RPC; the response arrives as [`UdpEvent::Response`] with
    /// `tag`.
    pub fn call(&self, server: PeerId, request: Vec<u8>, tag: u64) -> io::Result<u64> {
        let mut s = self.shared.lock();
        if !s.peers.contains_key(&server) {
            return Err(io::Error::new(io::ErrorKind::NotFound, "unknown peer"));
        }
        let seq = s.ep.begin_rpc(now_ns(), server, request.len() as u64, tag);
        let key = MsgKey { origin: self.me, seq, dir: Dir::Request };
        s.out_payloads.insert(key, Arc::new(request));
        drop(s);
        self.pump();
        Ok(seq)
    }

    /// Respond to an RPC surfaced via [`UdpEvent::Request`].
    pub fn respond(&self, client: PeerId, rpc: u64, response: Vec<u8>) -> io::Result<()> {
        let mut s = self.shared.lock();
        s.ep.send_response(now_ns(), client, rpc, response.len() as u64, rpc);
        let key = MsgKey { origin: client, seq: rpc, dir: Dir::Response };
        s.out_payloads.insert(key, Arc::new(response));
        drop(s);
        self.pump();
        Ok(())
    }

    /// The application event channel.
    pub fn events(&self) -> &Receiver<UdpEvent> {
        &self.events_rx
    }

    /// Number of application events dropped because the bounded event
    /// channel was full when the driver tried to deliver them (see
    /// [`UdpConfig::event_channel_cap`]). A growing value is the signal
    /// to drain [`events`](Self::events) faster or raise the bound.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped.load(Ordering::Relaxed)
    }

    /// Snapshot the node's driver counters as a [`RunSummary`]. The
    /// summary is how channel overflow becomes visible: callers that
    /// shut a node down should check (or log) `events_dropped` here
    /// rather than silently losing sheds.
    pub fn run_summary(&self) -> RunSummary {
        RunSummary {
            peer: self.me,
            events_queued: self.events_rx.len(),
            events_dropped: self.events_dropped(),
            out_payloads: self.out_payload_count(),
        }
    }

    /// Number of outbound payload buffers currently retained (shrinks to
    /// zero once sent messages are delivered/acknowledged and their
    /// retransmission window has passed).
    pub fn out_payload_count(&self) -> usize {
        self.shared.lock().out_payloads.len()
    }

    /// Stop the driver thread (the node drains on drop of the last Arc).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Transmit everything the endpoint has ready.
    fn pump(&self) {
        let mut batch: Vec<(SocketAddr, Vec<u8>)> = Vec::new();
        {
            let mut s = self.shared.lock();
            let now = now_ns();
            while let Some((dst, pkt)) = s.ep.poll_transmit(now) {
                let Some(&addr) = s.peers.get(&dst) else { continue };
                let buf = match &pkt {
                    HomaPacket::Data(h) => {
                        let key = h.key;
                        let payload = s
                            .out_payloads
                            .get(&key)
                            .map(|p| {
                                let start = (h.offset as usize).min(p.len());
                                let end = (h.offset as usize + h.payload as usize).min(p.len());
                                p[start..end].to_vec()
                            })
                            .unwrap_or_else(|| vec![0; h.payload as usize]);
                        homa_wire::encode(&pkt, &payload)
                    }
                    _ => homa_wire::encode(&pkt, &[]),
                };
                batch.push((addr, buf.to_vec()));
                if batch.len() >= 256 {
                    break;
                }
            }
        }
        for (addr, buf) in batch {
            // DSCP marking would go here (requires raw socket options);
            // see `priority_to_dscp`.
            let _ = self.socket.send_to(&buf, addr);
        }
    }

    fn run(self: Arc<Self>, cfg: UdpConfig) {
        let mut buf = vec![0u8; 64 * 1024];
        let mut last_tick = Instant::now();
        while !self.stop.load(Ordering::SeqCst) {
            match self.socket.recv_from(&mut buf) {
                Ok((n, from_addr)) => {
                    self.on_datagram(&buf[..n], from_addr);
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                Err(_) => break,
            }
            if last_tick.elapsed() >= cfg.poll_interval {
                last_tick = Instant::now();
                let mut s = self.shared.lock();
                s.ep.timer_tick(now_ns());
                self.drain_events(&mut s);
                // GC delivered out-payloads: once the endpoint's sender
                // has dropped a message (response acked, one-way linger
                // expired, or aborted), no retransmission can ask for its
                // bytes — the buffer is dead weight on a long-running
                // node.
                let Shared { ep, out_payloads, .. } = &mut *s;
                out_payloads.retain(|key, _| ep.outbound_contains(*key));
                drop(s);
            }
            self.pump();
        }
    }

    fn on_datagram(&self, dgram: &[u8], from_addr: SocketAddr) {
        let Ok((pkt, payload_off)) = homa_wire::decode(dgram) else { return };
        let mut s = self.shared.lock();
        let Some(&from) = s.addr_to_peer.get(&from_addr) else { return };
        if let Some(f) = s.rx_drop.as_mut() {
            if f(&pkt) {
                return;
            }
        }
        // Stash payload bytes into the reassembly buffer before the
        // endpoint consumes the header.
        if let HomaPacket::Data(h) = &pkt {
            let buf = s.in_buffers.entry(h.key).or_insert_with(|| vec![0u8; h.msg_len as usize]);
            let start = (h.offset as usize).min(buf.len());
            let end = (h.offset as usize + h.payload as usize).min(buf.len());
            let avail = &dgram[payload_off..payload_off + h.payload as usize];
            buf[start..end].copy_from_slice(&avail[..end - start]);
        }
        s.ep.on_packet(now_ns(), from, pkt);
        self.drain_events(&mut s);
    }

    fn drain_events(&self, s: &mut Shared) {
        for ev in s.ep.take_events() {
            let out = match ev {
                HomaEvent::MessageDelivered { src, seq, tag, .. } => {
                    let key = MsgKey { origin: src, seq, dir: Dir::Oneway };
                    let data = s.in_buffers.remove(&key).unwrap_or_default();
                    Some(UdpEvent::Message { from: src, tag, data })
                }
                HomaEvent::RequestArrived { client, rpc_seq, .. } => {
                    let key = MsgKey { origin: client, seq: rpc_seq, dir: Dir::Request };
                    let data = s.in_buffers.remove(&key).unwrap_or_default();
                    Some(UdpEvent::Request { from: client, rpc: rpc_seq, data })
                }
                HomaEvent::RpcCompleted { server, rpc_seq, tag, .. } => {
                    let key = MsgKey { origin: self.me, seq: rpc_seq, dir: Dir::Response };
                    let data = s.in_buffers.remove(&key).unwrap_or_default();
                    // The request payload is no longer needed.
                    s.out_payloads.remove(&MsgKey {
                        origin: self.me,
                        seq: rpc_seq,
                        dir: Dir::Request,
                    });
                    Some(UdpEvent::Response { from: server, tag, data })
                }
                HomaEvent::RpcAborted { server, tag } => {
                    Some(UdpEvent::Aborted { peer: server, tag })
                }
                HomaEvent::OutboundAborted { dst, tag } => {
                    Some(UdpEvent::Aborted { peer: dst, tag })
                }
                HomaEvent::InboundAborted { key, .. } => {
                    // Free the partial reassembly buffer of the abandoned
                    // inbound; it will never complete.
                    s.in_buffers.remove(&key);
                    None
                }
            };
            if let Some(ev) = out {
                // Non-blocking delivery: a full bounded channel signals
                // `WouldBlock`; the event is dropped and counted rather
                // than growing the queue (or stalling the socket thread)
                // without bound.
                match self.events_tx.try_send(ev) {
                    Ok(()) | Err(TrySendError::Disconnected(_)) => {}
                    Err(TrySendError::Full(_)) => {
                        self.events_dropped.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }
}

impl Drop for HomaUdpNode {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

/// Monotonic nanoseconds since an arbitrary process-local epoch.
fn now_ns() -> u64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn pair(base: u16) -> (Arc<HomaUdpNode>, Arc<HomaUdpNode>) {
        let a = HomaUdpNode::bind(PeerId(0), ("127.0.0.1", 0), UdpConfig::default()).unwrap();
        let b = HomaUdpNode::bind(PeerId(1), ("127.0.0.1", 0), UdpConfig::default()).unwrap();
        let _ = base;
        a.add_peer(PeerId(1), b.local_addr().unwrap());
        b.add_peer(PeerId(0), a.local_addr().unwrap());
        (a, b)
    }

    #[test]
    fn oneway_message_over_loopback() {
        let (a, b) = pair(0);
        let payload: Vec<u8> = (0..5_000u32).map(|i| (i % 251) as u8).collect();
        a.send_message(PeerId(1), payload.clone(), 77).unwrap();
        match b.events().recv_timeout(Duration::from_secs(5)).unwrap() {
            UdpEvent::Message { from, tag, data } => {
                assert_eq!(from, PeerId(0));
                assert_eq!(tag, 77);
                assert_eq!(data, payload);
            }
            other => panic!("unexpected {other:?}"),
        }
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn rpc_echo_over_loopback() {
        let (a, b) = pair(1);
        a.call(PeerId(1), b"hello homa".to_vec(), 5).unwrap();
        match b.events().recv_timeout(Duration::from_secs(5)).unwrap() {
            UdpEvent::Request { from, rpc, data } => {
                assert_eq!(data, b"hello homa");
                b.respond(from, rpc, data).unwrap();
            }
            other => panic!("unexpected {other:?}"),
        }
        match a.events().recv_timeout(Duration::from_secs(5)).unwrap() {
            UdpEvent::Response { from, tag, data } => {
                assert_eq!(from, PeerId(1));
                assert_eq!(tag, 5);
                assert_eq!(data, b"hello homa");
            }
            other => panic!("unexpected {other:?}"),
        }
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn large_message_spans_many_packets() {
        let (a, b) = pair(2);
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i * 7 % 253) as u8).collect();
        a.send_message(PeerId(1), payload.clone(), 9).unwrap();
        match b.events().recv_timeout(Duration::from_secs(10)).unwrap() {
            UdpEvent::Message { data, .. } => assert_eq!(data, payload),
            other => panic!("unexpected {other:?}"),
        }
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn loss_recovered_by_resend() {
        let (a, b) = pair(3);
        // Drop the first two data packets b receives.
        let mut dropped = 0;
        b.set_rx_drop_filter(move |p| {
            if matches!(p, HomaPacket::Data(_)) && dropped < 2 {
                dropped += 1;
                true
            } else {
                false
            }
        });
        let payload: Vec<u8> = (0..20_000u32).map(|i| (i % 256) as u8).collect();
        a.send_message(PeerId(1), payload.clone(), 3).unwrap();
        match b.events().recv_timeout(Duration::from_secs(10)).unwrap() {
            UdpEvent::Message { data, .. } => assert_eq!(data, payload),
            other => panic!("unexpected {other:?}"),
        }
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn out_payload_map_shrinks_after_delivery() {
        // Short retransmission window so the one-way linger (4x resend
        // interval) expires quickly and the driver GC can reap the
        // payload buffer.
        let cfg = UdpConfig {
            homa: HomaConfig { resend_interval_ns: 5_000_000, ..HomaConfig::default() },
            ..UdpConfig::default()
        };
        let a = HomaUdpNode::bind(PeerId(0), ("127.0.0.1", 0), cfg.clone()).unwrap();
        let b = HomaUdpNode::bind(PeerId(1), ("127.0.0.1", 0), cfg).unwrap();
        a.add_peer(PeerId(1), b.local_addr().unwrap());
        b.add_peer(PeerId(0), a.local_addr().unwrap());

        for i in 0..8u64 {
            let payload: Vec<u8> = (0..10_000u32).map(|x| (x % 255) as u8).collect();
            a.send_message(PeerId(1), payload, i).unwrap();
        }
        assert!(a.out_payload_count() >= 1, "payloads retained while in flight");
        for _ in 0..8 {
            match b.events().recv_timeout(Duration::from_secs(5)).unwrap() {
                UdpEvent::Message { .. } => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        // All delivered; after the linger window the sender drops its
        // state and the driver GC must shrink the map to empty.
        let deadline = Instant::now() + Duration::from_secs(5);
        while a.out_payload_count() > 0 {
            assert!(Instant::now() < deadline, "out_payloads never GC'd: {}", {
                a.out_payload_count()
            });
            std::thread::sleep(Duration::from_millis(10));
        }
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn rpc_payloads_released_after_completion() {
        let (a, b) = pair(4);
        a.call(PeerId(1), vec![7u8; 5_000], 1).unwrap();
        match b.events().recv_timeout(Duration::from_secs(5)).unwrap() {
            UdpEvent::Request { from, rpc, data } => b.respond(from, rpc, data).unwrap(),
            other => panic!("unexpected {other:?}"),
        }
        match a.events().recv_timeout(Duration::from_secs(5)).unwrap() {
            UdpEvent::Response { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        // The response acknowledges the request, and the server drops
        // response state once fully sent — both maps must empty out.
        let deadline = Instant::now() + Duration::from_secs(5);
        while a.out_payload_count() > 0 || b.out_payload_count() > 0 {
            assert!(
                Instant::now() < deadline,
                "rpc payloads never GC'd: client {} server {}",
                a.out_payload_count(),
                b.out_payload_count()
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn bounded_event_channel_fills_then_drains() {
        // Cap the event channel at 3 and deliver 8 messages without the
        // application consuming any: exactly 3 queue, the rest are
        // dropped with the backpressure counter ticking. Draining the
        // bound restores delivery.
        let cfg = UdpConfig { event_channel_cap: 3, ..UdpConfig::default() };
        let a = HomaUdpNode::bind(PeerId(0), ("127.0.0.1", 0), cfg.clone()).unwrap();
        let b = HomaUdpNode::bind(PeerId(1), ("127.0.0.1", 0), cfg).unwrap();
        a.add_peer(PeerId(1), b.local_addr().unwrap());
        b.add_peer(PeerId(0), a.local_addr().unwrap());

        for i in 0..8u64 {
            a.send_message(PeerId(1), vec![i as u8; 64], i).unwrap();
        }
        // Wait until every message has been delivered or dropped at the
        // event channel (3 queued + 5 dropped).
        let deadline = Instant::now() + Duration::from_secs(10);
        while b.events().len() < 3 || b.events_dropped() < 5 {
            assert!(
                Instant::now() < deadline,
                "backpressure never engaged: {} queued, {} dropped",
                b.events().len(),
                b.events_dropped()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(b.events().len(), 3, "bound exceeded");
        assert_eq!(b.events_dropped(), 5);

        // The run summary surfaces the overflow: full channel, five
        // sheds, all visible in one snapshot (and its printed form).
        let full = b.run_summary();
        assert_eq!(full.events_queued, 3);
        assert_eq!(full.events_dropped, 5);
        assert!(
            full.to_string().contains("5 dropped (channel overflow)"),
            "summary must name the drop count: {full}"
        );

        // Drain the bound; the channel is usable again afterwards.
        for _ in 0..3 {
            match b.events().recv_timeout(Duration::from_secs(5)).unwrap() {
                UdpEvent::Message { .. } => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        a.send_message(PeerId(1), b"after-drain".to_vec(), 99).unwrap();
        match b.events().recv_timeout(Duration::from_secs(5)).unwrap() {
            UdpEvent::Message { tag, data, .. } => {
                assert_eq!(tag, 99);
                assert_eq!(data, b"after-drain");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Post-drain summary: queue empty again, but the drop counter is
        // cumulative — the overflow stays on the record.
        let drained = b.run_summary();
        assert_eq!(drained.events_queued, 0);
        assert_eq!(drained.events_dropped, 5);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn dscp_mapping() {
        assert_eq!(priority_to_dscp(0), 0);
        assert_eq!(priority_to_dscp(7), 56);
        assert_eq!(priority_to_dscp(99), 56);
    }
}
