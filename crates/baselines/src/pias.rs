//! PIAS (Bai et al., NSDI 2015) on the shared fabric.
//!
//! PIAS assigns in-network priorities at the *sender* with no knowledge
//! of message sizes: every flow starts at the highest priority and is
//! demoted through a multi-level feedback queue as it transmits more
//! bytes, crossing workload-tuned thresholds. Transport is DCTCP-style:
//! ECN marks from the fabric drive a windowed multiplicative backoff.
//!
//! The Homa paper's critique reproduced here (§5.2): short messages queue
//! behind the high-priority *prefixes* of long messages; long messages
//! struggle to finish because their priority keeps dropping; and without
//! receiver scheduling, congestion triggers ECN backoff (notably on W4).
//!
//! The fabric must be configured with ECN marking
//! ([`fabric_queues`]).

use crate::common::{
    ns, CtrlQueue, FlowId, FlowTable, ReassemblyTable, TickTimer, TxBody, CTRL_BYTES,
    DATA_OVERHEAD, MAX_PAYLOAD, RTT_BYTES,
};
use homa_sim::{
    EcnConfig, HostId, Packet, PacketMeta, SimDuration, SimTime, TimerToken, Transport,
    TransportActions,
};
use homa_workloads::MessageSizeDist;

/// PIAS configuration.
#[derive(Debug, Clone)]
pub struct PiasConfig {
    /// Ascending byte thresholds demoting a flow from priority `7-k` to
    /// `7-k-1` once its sent bytes exceed `thresholds[k]`. At most 7
    /// entries (8 levels).
    pub thresholds: Vec<u64>,
    /// Initial congestion window in bytes.
    pub init_cwnd: u64,
    /// Minimum congestion window in bytes.
    pub min_cwnd: u64,
    /// Maximum congestion window in bytes.
    pub max_cwnd: u64,
    /// DCTCP g parameter (EWMA weight for the marked fraction).
    pub dctcp_g: f64,
    /// Retransmission timeout (go-back-N) in nanoseconds.
    pub rto_ns: u64,
    /// ECN marking threshold for fabric queues, in bytes.
    pub ecn_threshold_bytes: u64,
}

impl Default for PiasConfig {
    fn default() -> Self {
        PiasConfig {
            thresholds: vec![1_500, 10_000, 50_000, 200_000, 1_000_000, 5_000_000, 20_000_000],
            init_cwnd: RTT_BYTES,
            min_cwnd: MAX_PAYLOAD as u64,
            max_cwnd: 4 * RTT_BYTES,
            dctcp_g: 0.0625,
            rto_ns: 500_000,
            ecn_threshold_bytes: 30_000,
        }
    }
}

impl PiasConfig {
    /// Derive demotion thresholds for a workload, mimicking PIAS's
    /// per-workload threshold tuning: boundaries that spread the
    /// workload's *bytes* evenly across the 8 levels, floored at one
    /// packet so single-packet messages always ride the top level (the
    /// behaviour the Homa paper notes for W1-W3).
    pub fn thresholds_for(dist: &MessageSizeDist, levels: u8) -> Vec<u64> {
        let n = levels.saturating_sub(1) as usize;
        let mut out = Vec::with_capacity(n);
        for k in 1..=n {
            let frac = k as f64 / levels as f64;
            // Byte-weighted quantile via a numeric sweep.
            let target = frac;
            let mut lo = 0.0f64;
            let mut hi = 1.0f64;
            // The byte-weighted CDF is monotone in size; binary-search the
            // message-count quantile whose byte CDF hits `target`.
            for _ in 0..40 {
                let mid = (lo + hi) / 2.0;
                let size = dist.quantile(mid);
                if dist.byte_weighted_cdf(size) < target {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            let t = dist.quantile(hi).max(MAX_PAYLOAD as u64 * k as u64);
            out.push(t);
        }
        // Strictly ascending.
        for i in 1..out.len() {
            if out[i] <= out[i - 1] {
                out[i] = out[i - 1] + 1;
            }
        }
        out
    }

    /// Priority for a packet of a flow that has already sent
    /// `bytes_sent` bytes: top level until the first threshold, then
    /// demoted per level.
    pub fn prio_for(&self, bytes_sent: u64) -> u8 {
        for (k, &t) in self.thresholds.iter().enumerate() {
            if bytes_sent < t {
                return 7 - k as u8;
            }
        }
        (7 - self.thresholds.len()) as u8
    }
}

/// Packet metadata for PIAS.
#[derive(Debug, Clone)]
pub enum PiasMeta {
    /// Data segment at an MLFQ-assigned priority.
    Data {
        /// Flow identity.
        flow: FlowId,
        /// Message length.
        msg_len: u64,
        /// Offset of this segment.
        offset: u64,
        /// Payload bytes.
        payload: u32,
        /// MLFQ priority stamped by the sender.
        prio: u8,
        /// Application tag.
        tag: u64,
        /// Retransmission flag.
        retx: bool,
    },
    /// Cumulative ack with ECN echo.
    Ack {
        /// Flow identity.
        flow: FlowId,
        /// All bytes below this offset received in order.
        cum_offset: u64,
        /// Whether the acked packet carried an ECN mark.
        ecn_echo: bool,
    },
}

impl PacketMeta for PiasMeta {
    fn wire_bytes(&self) -> u32 {
        match self {
            PiasMeta::Data { payload, .. } => payload + DATA_OVERHEAD,
            PiasMeta::Ack { .. } => CTRL_BYTES,
        }
    }
    fn priority(&self) -> u8 {
        match self {
            PiasMeta::Data { prio, .. } => *prio,
            PiasMeta::Ack { .. } => 7,
        }
    }
    fn is_control(&self) -> bool {
        matches!(self, PiasMeta::Ack { .. })
    }
    fn goodput_bytes(&self) -> u32 {
        match self {
            PiasMeta::Data { payload, retx: false, .. } => *payload,
            _ => 0,
        }
    }
}

/// Sender-side flow state: DCTCP window machinery on the shared body.
#[derive(Debug)]
struct TxFlow {
    body: TxBody,
    acked: u64,
    /// DCTCP state.
    cwnd: f64,
    alpha: f64,
    marked: u64,
    total: u64,
    window_end: u64,
    last_progress: u64,
}

const RTO_TOKEN: TimerToken = TimerToken(6);
const RTO_TICK: SimDuration = SimDuration::from_micros(250);

/// The PIAS transport instance for one host.
pub struct PiasTransport {
    me: HostId,
    cfg: PiasConfig,
    next_seq: u64,
    tx: FlowTable<FlowId, TxFlow>,
    rx: ReassemblyTable,
    ctrl: CtrlQueue<PiasMeta>,
    rto: TickTimer,
}

impl PiasTransport {
    /// New PIAS transport for host `me`.
    pub fn new(me: HostId, cfg: PiasConfig) -> Self {
        PiasTransport {
            me,
            cfg,
            next_seq: 1,
            tx: FlowTable::new(),
            rx: ReassemblyTable::new(),
            ctrl: CtrlQueue::new(),
            rto: TickTimer::new(RTO_TOKEN, RTO_TICK),
        }
    }
}

impl Transport<PiasMeta> for PiasTransport {
    fn on_packet(&mut self, now: SimTime, pkt: Packet<PiasMeta>, act: &mut TransportActions) {
        self.rto.ensure(now, act);
        match pkt.meta {
            PiasMeta::Data { flow, msg_len, offset, payload, tag, .. } => {
                let cum = if self.rx.upsert(flow, msg_len, tag, ns(now)).is_some() {
                    let progress = self.rx.record(flow, offset, payload, tag);
                    progress.contiguous
                } else {
                    // Late duplicate of a delivered message: re-ack the
                    // full length so the sender retires the flow.
                    msg_len
                };
                self.ctrl.push(pkt.src, PiasMeta::Ack { flow, cum_offset: cum, ecn_echo: pkt.ecn });
                self.rx.deliver_if_complete(flow, act);
                act.kick_tx();
            }
            PiasMeta::Ack { flow, cum_offset, ecn_echo } => {
                let mut finished = false;
                if let Some(f) = self.tx.get_mut(flow) {
                    if cum_offset > f.acked {
                        f.acked = cum_offset;
                        f.last_progress = ns(now);
                    }
                    // DCTCP accounting: one observation per ack.
                    f.total += 1;
                    if ecn_echo {
                        f.marked += 1;
                    }
                    if f.acked >= f.window_end {
                        // End of a congestion window: update alpha, adjust
                        // cwnd.
                        let frac = if f.total > 0 { f.marked as f64 / f.total as f64 } else { 0.0 };
                        f.alpha = (1.0 - self.cfg.dctcp_g) * f.alpha + self.cfg.dctcp_g * frac;
                        if frac > 0.0 {
                            f.cwnd *= 1.0 - f.alpha / 2.0;
                        } else {
                            f.cwnd += MAX_PAYLOAD as f64;
                        }
                        f.cwnd = f.cwnd.clamp(self.cfg.min_cwnd as f64, self.cfg.max_cwnd as f64);
                        f.marked = 0;
                        f.total = 0;
                        f.window_end = f.acked + f.cwnd as u64;
                    }
                    finished = f.acked >= f.body.len;
                }
                if finished {
                    self.tx.remove(flow);
                }
                act.kick_tx();
            }
        }
    }

    fn on_timer(&mut self, now: SimTime, _token: TimerToken, act: &mut TransportActions) {
        // Go-back-N on stall.
        let mut kick = false;
        let rto_ns = self.cfg.rto_ns;
        let min_cwnd = self.cfg.min_cwnd as f64;
        for f in self.tx.values_mut() {
            if f.acked < f.body.fresh && ns(now).saturating_sub(f.last_progress) > rto_ns {
                f.body.fresh = f.acked;
                f.last_progress = ns(now);
                f.cwnd = (f.cwnd / 2.0).max(min_cwnd);
                kick = true;
            }
        }
        if kick {
            act.kick_tx();
        }
        self.rto.rearm(now, act);
    }

    fn next_packet(&mut self, _now: SimTime) -> Option<Packet<PiasMeta>> {
        if let Some(pkt) = self.ctrl.pop_packet(self.me) {
            return Some(pkt);
        }
        // Fair round-robin across flows with window space (TCP-like; PIAS
        // does not reorder at the sender).
        let flow = self.tx.select_rr(|_, f| {
            let limit = (f.acked + f.cwnd as u64).min(f.body.len);
            f.body.has_work(limit)
        })?;
        let f = self.tx.get_mut(flow).expect("selected");
        let limit = (f.acked + f.cwnd as u64).min(f.body.len);
        let (offset, payload, retx) = f.body.next_chunk(limit).expect("eligible");
        let prio = self.cfg.prio_for(offset);
        Some(Packet::new(
            self.me,
            f.body.dst,
            PiasMeta::Data {
                flow,
                msg_len: f.body.len,
                offset,
                payload,
                prio,
                tag: f.body.tag,
                retx,
            },
        ))
    }

    fn inject_message(
        &mut self,
        now: SimTime,
        dst: HostId,
        len: u64,
        tag: u64,
        act: &mut TransportActions,
    ) {
        self.rto.ensure(now, act);
        let flow = FlowId { src: self.me, seq: self.next_seq };
        self.next_seq += 1;
        self.tx.insert(
            flow,
            TxFlow {
                body: TxBody::new(dst, len, tag),
                acked: 0,
                cwnd: self.cfg.init_cwnd as f64,
                alpha: 0.0,
                marked: 0,
                total: 0,
                window_end: self.cfg.init_cwnd,
                last_progress: ns(now),
            },
        );
        act.kick_tx();
    }

    fn delivered_bytes(&self) -> u64 {
        self.rx.delivered_bytes()
    }
}

/// Fabric configuration for PIAS: strict priorities with DCTCP-style ECN
/// marking.
pub fn fabric_queues(cfg: &PiasConfig) -> homa_sim::QueueDiscipline {
    homa_sim::QueueDiscipline {
        kind: homa_sim::QueueKind::StrictPriority { levels: 8 },
        cap_bytes: 1 << 20,
        ecn: Some(EcnConfig { threshold_bytes: cfg.ecn_threshold_bytes }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homa_sim::{AppEvent, Network, NetworkConfig, Topology};
    use homa_workloads::Workload;

    fn net(n: u32) -> Network<PiasMeta, PiasTransport> {
        let cfg = PiasConfig::default();
        let netcfg = NetworkConfig::uniform(1, fabric_queues(&cfg));
        Network::new(Topology::single_switch(n), netcfg, move |h| {
            PiasTransport::new(h, PiasConfig::default())
        })
    }

    #[test]
    fn mlfq_priorities_demote_with_bytes_sent() {
        let cfg = PiasConfig::default();
        assert_eq!(cfg.prio_for(0), 7);
        assert_eq!(cfg.prio_for(1_400), 7);
        assert_eq!(cfg.prio_for(1_500), 6);
        assert_eq!(cfg.prio_for(60_000), 4);
        assert_eq!(cfg.prio_for(100_000_000), 0);
    }

    #[test]
    fn thresholds_derived_from_workload_ascend() {
        for w in [Workload::W1, Workload::W3, Workload::W5] {
            let t = PiasConfig::thresholds_for(&w.dist(), 8);
            assert_eq!(t.len(), 7);
            assert!(t.windows(2).all(|x| x[0] < x[1]), "{w}: {t:?}");
            assert!(t[0] >= MAX_PAYLOAD as u64, "single-packet messages stay on top");
        }
    }

    #[test]
    fn single_message_delivers() {
        let mut net = net(4);
        net.inject_message(HostId(0), HostId(1), 40_000, 4);
        net.run_until(SimTime::from_millis(10));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 1);
        assert!(matches!(evs[0].2, AppEvent::MessageDelivered { len: 40_000, tag: 4, .. }));
    }

    #[test]
    fn zero_length_message_delivers() {
        let mut net = net(4);
        net.inject_message(HostId(0), HostId(1), 0, 13);
        net.run_until(SimTime::from_millis(1));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 1, "empty message announces itself with one packet");
        assert!(matches!(evs[0].2, AppEvent::MessageDelivered { len: 0, tag: 13, .. }));
    }

    #[test]
    fn short_messages_beat_long_prefixes_eventually() {
        let mut net = net(4);
        net.inject_message(HostId(0), HostId(3), 3_000_000, 1);
        net.run_until(SimTime::from_micros(500));
        net.inject_message(HostId(1), HostId(3), 300, 2);
        net.run_until(SimTime::from_millis(40));
        let evs = net.take_app_events();
        let tiny = evs
            .iter()
            .find(|(_, _, e)| matches!(e, AppEvent::MessageDelivered { tag: 2, .. }))
            .expect("tiny delivered");
        // The long flow has been demoted below P7 by 500us (it has sent
        // >1500 bytes), so the tiny message overtakes in-network.
        let delay = tiny.0.as_micros_f64() - 500.0;
        assert!(delay < 50.0, "tiny message took {delay}us");
    }

    #[test]
    fn ecn_backoff_engages_under_congestion() {
        let mut net = net(6);
        for s in 0..5u32 {
            net.inject_message(HostId(s), HostId(5), 500_000, s as u64);
        }
        net.run_until(SimTime::from_millis(50));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 5, "all complete");
        let stats = net.harvest_stats();
        assert_eq!(stats.total_drops(), 0, "ECN avoids drops");
    }
}
