//! NDP (Handley et al., SIGCOMM 2017) on the shared fabric.
//!
//! NDP re-architects the fabric: switches keep extremely short data
//! queues (8 packets) and, instead of dropping on overflow, *trim*
//! packets to their headers and forward the headers at high priority.
//! The receiver learns of every packet — trimmed or not — and paces PULL
//! packets back to the senders at its downlink rate, servicing senders
//! round-robin (fair share). Senders blast the first RTTbytes blindly,
//! then send one packet per PULL, retransmitting trimmed offsets first.
//!
//! Per the Homa paper's analysis (§5.2), NDP's fair-share (non-SRPT)
//! scheduling and lack of overcommitment produce uniformly high slowdown
//! for messages longer than RTTbytes, and senders without prioritized
//! transmit queues suffer head-of-line blocking for short messages.
//! The fabric should be configured with [`fabric_queues`]
//! (trim-capable short queues).

use crate::common::{
    full_packet_time_ns, ns, CtrlQueue, FlowId, FlowTable, ReassemblyTable, TickTimer, TxBody,
    CTRL_BYTES, DATA_OVERHEAD, MAX_PAYLOAD, RTT_BYTES,
};
use homa_sim::{
    HostId, Packet, PacketMeta, SimDuration, SimTime, TimerToken, Transport, TransportActions,
};
use std::collections::VecDeque;

/// NDP configuration.
#[derive(Debug, Clone)]
pub struct NdpConfig {
    /// Initial blind window per message (RTTbytes).
    pub initial_window: u64,
    /// Downlink speed used to pace pulls, bits/second.
    pub link_bps: u64,
    /// Switch data-queue cap in packets (NDP uses 8).
    pub data_queue_packets: usize,
}

impl Default for NdpConfig {
    fn default() -> Self {
        NdpConfig { initial_window: RTT_BYTES, link_bps: 10_000_000_000, data_queue_packets: 8 }
    }
}

/// Packet metadata for NDP.
#[derive(Debug, Clone)]
pub enum NdpMeta {
    /// Data segment (possibly trimmed to a header in the fabric).
    Data {
        /// Message identity.
        flow: FlowId,
        /// Message length.
        msg_len: u64,
        /// Offset of this segment.
        offset: u64,
        /// Payload bytes (0 after trimming).
        payload: u32,
        /// Application tag.
        tag: u64,
        /// Retransmission flag.
        retx: bool,
    },
    /// Receiver-paced transmission credit, optionally requesting a
    /// specific trimmed offset.
    Pull {
        /// Message being pulled.
        flow: FlowId,
        /// Specific offset to retransmit (trimmed earlier), or `None` for
        /// the next fresh packet.
        retx_offset: Option<u64>,
    },
    /// Receiver's completion notice: the sender may discard flow state.
    Done {
        /// Completed message.
        flow: FlowId,
    },
}

impl PacketMeta for NdpMeta {
    fn wire_bytes(&self) -> u32 {
        match self {
            NdpMeta::Data { payload, .. } => payload + DATA_OVERHEAD,
            NdpMeta::Pull { .. } | NdpMeta::Done { .. } => CTRL_BYTES,
        }
    }
    fn priority(&self) -> u8 {
        // NDP's priorities are structural (trimmed headers + control in
        // the high queue); the NdpTrim discipline keys on is_control /
        // was_trimmed, not this value.
        0
    }
    fn is_control(&self) -> bool {
        !matches!(self, NdpMeta::Data { .. })
    }
    fn goodput_bytes(&self) -> u32 {
        match self {
            NdpMeta::Data { payload, retx: false, .. } => *payload,
            _ => 0,
        }
    }
    fn trimmed(&self) -> Option<Self> {
        match self {
            NdpMeta::Data { flow, msg_len, offset, tag, retx, .. } => Some(NdpMeta::Data {
                flow: *flow,
                msg_len: *msg_len,
                offset: *offset,
                payload: 0,
                tag: *tag,
                retx: *retx,
            }),
            NdpMeta::Pull { .. } | NdpMeta::Done { .. } => None,
        }
    }
}

/// Sender-side flow state: pull credit on top of the shared body.
#[derive(Debug)]
struct TxMsg {
    body: TxBody,
    /// Bytes authorized: initial window plus one packet per pull.
    granted: u64,
}

const PACER_TOKEN: TimerToken = TimerToken(5);

/// The NDP transport instance for one host.
pub struct NdpTransport {
    me: HostId,
    cfg: NdpConfig,
    next_seq: u64,
    tx: FlowTable<FlowId, TxMsg>,
    rx: ReassemblyTable,
    /// Fair-share pull queue: FIFO of pending pulls (flow, retx offset).
    pulls: VecDeque<(HostId, FlowId, Option<u64>)>,
    ctrl: CtrlQueue<NdpMeta>,
    pacer: TickTimer,
}

impl NdpTransport {
    /// New NDP transport for host `me`.
    pub fn new(me: HostId, cfg: NdpConfig) -> Self {
        let gap = SimDuration::from_nanos(full_packet_time_ns(cfg.link_bps));
        NdpTransport {
            me,
            cfg,
            next_seq: 1,
            tx: FlowTable::new(),
            rx: ReassemblyTable::new(),
            pulls: VecDeque::new(),
            ctrl: CtrlQueue::new(),
            pacer: TickTimer::new(PACER_TOKEN, gap),
        }
    }
}

impl Transport<NdpMeta> for NdpTransport {
    fn on_packet(&mut self, now: SimTime, pkt: Packet<NdpMeta>, act: &mut TransportActions) {
        match pkt.meta {
            NdpMeta::Data { flow, msg_len, offset, payload, tag, .. } => {
                if self.rx.is_delivered(&flow) {
                    // Late duplicate of a delivered message: repeat the
                    // completion notice so the sender frees its state,
                    // without rebuilding receive state or pacing pulls.
                    self.ctrl.push(flow.src, NdpMeta::Done { flow });
                    act.kick_tx();
                    return;
                }
                // A zero-payload packet is a fabric-trimmed header —
                // unless the message itself is empty, in which case it
                // is the message's one legitimate packet.
                let trimmed = pkt.was_trimmed || (payload == 0 && msg_len > 0);
                let _ = self.rx.upsert(flow, msg_len, tag, ns(now));
                if trimmed {
                    // Header-only arrival: the payload was cut in the
                    // fabric; schedule a retransmission pull.
                    self.pulls.push_back((flow.src, flow, Some(offset)));
                } else {
                    self.rx.record(flow, offset, payload, tag);
                    if self.rx.deliver_if_complete(flow, act) {
                        self.ctrl.push(flow.src, NdpMeta::Done { flow });
                        act.kick_tx();
                        self.pacer.ensure(now, act);
                        return;
                    }
                    // Fair share: each arrival earns the flow one more
                    // pull if it still has unpulled fresh bytes.
                    self.pulls.push_back((flow.src, flow, None));
                }
                self.pacer.ensure(now, act);
            }
            NdpMeta::Pull { flow, retx_offset } => {
                if let Some(m) = self.tx.get_mut(flow) {
                    match retx_offset {
                        Some(o) => m.body.queue_retx(o),
                        None => {
                            m.granted = (m.granted + MAX_PAYLOAD as u64).min(m.body.len);
                        }
                    }
                    act.kick_tx();
                }
            }
            NdpMeta::Done { flow } => {
                self.tx.remove(flow);
            }
        }
    }

    fn on_timer(&mut self, now: SimTime, token: TimerToken, act: &mut TransportActions) {
        debug_assert!(self.pacer.matches(token));
        // Emit one pull per packet-time (receiver-paced downlink).
        while let Some((dst, flow, retx)) = self.pulls.pop_front() {
            // Skip pulls for flows that completed meanwhile.
            let alive = self.rx.get(&flow).map(|f| !f.msg.complete()).unwrap_or(false);
            if alive {
                self.ctrl.push(dst, NdpMeta::Pull { flow, retx_offset: retx });
                act.kick_tx();
                break;
            }
        }
        if !self.pulls.is_empty() || self.rx.any_incomplete() {
            self.pacer.rearm(now, act);
        } else {
            self.pacer.disarm();
        }
    }

    fn next_packet(&mut self, _now: SimTime) -> Option<Packet<NdpMeta>> {
        if let Some(pkt) = self.ctrl.pop_packet(self.me) {
            return Some(pkt);
        }
        // NDP senders keep a FIFO transmit queue (no SRPT — the Homa
        // paper calls out the resulting head-of-line blocking). Serve
        // flows in insertion order: retransmissions first within a flow.
        let flow = self.tx.select_min(|f, m| m.body.has_work(m.granted).then_some(f.seq))?;
        let m = self.tx.get_mut(flow).expect("selected");
        let (offset, payload, retx) = m.body.next_chunk_whole(m.granted).expect("has_work");
        let pkt =
            NdpMeta::Data { flow, msg_len: m.body.len, offset, payload, tag: m.body.tag, retx };
        // Sender state is retained until the receiver's Done arrives:
        // even the final packet can be trimmed in the fabric and need a
        // pulled retransmission.
        Some(Packet::new(self.me, m.body.dst, pkt))
    }

    fn inject_message(
        &mut self,
        _now: SimTime,
        dst: HostId,
        len: u64,
        tag: u64,
        act: &mut TransportActions,
    ) {
        let flow = FlowId { src: self.me, seq: self.next_seq };
        self.next_seq += 1;
        let granted = self.cfg.initial_window.min(len);
        self.tx.insert(flow, TxMsg { body: TxBody::new(dst, len, tag), granted });
        act.kick_tx();
    }

    fn delivered_bytes(&self) -> u64 {
        self.rx.delivered_bytes()
    }
}

/// Fabric configuration for NDP: short trim-capable data queues on every
/// switch port.
pub fn fabric_queues(cfg: &NdpConfig) -> homa_sim::QueueDiscipline {
    homa_sim::QueueDiscipline {
        kind: homa_sim::QueueKind::NdpTrim { data_cap_packets: cfg.data_queue_packets },
        cap_bytes: 1 << 20,
        ecn: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homa_sim::{AppEvent, Network, NetworkConfig, Topology};

    fn net(n: u32) -> Network<NdpMeta, NdpTransport> {
        let cfg = NdpConfig::default();
        let netcfg = NetworkConfig::uniform(1, fabric_queues(&cfg));
        Network::new(Topology::single_switch(n), netcfg, move |h| {
            NdpTransport::new(h, NdpConfig::default())
        })
    }

    #[test]
    fn message_within_initial_window() {
        let mut net = net(4);
        net.inject_message(HostId(0), HostId(1), 5_000, 1);
        net.run_until(SimTime::from_millis(2));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 1);
    }

    #[test]
    fn zero_length_message_delivers() {
        // The empty announcement packet must not be mistaken for a
        // fabric-trimmed header (both have payload 0).
        let mut net = net(4);
        net.inject_message(HostId(0), HostId(1), 0, 14);
        net.run_until(SimTime::from_millis(1));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 1, "empty message announces itself with one packet");
        assert!(matches!(evs[0].2, AppEvent::MessageDelivered { len: 0, tag: 14, .. }));
    }

    #[test]
    fn long_message_sustained_by_pulls() {
        let mut net = net(4);
        net.inject_message(HostId(0), HostId(1), 300_000, 2);
        net.run_until(SimTime::from_millis(10));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 1, "pull pacing completes the transfer");
    }

    #[test]
    fn trimming_recovers_under_incast() {
        let mut net = net(8);
        // Seven senders blast one receiver: the 8-packet data queues trim
        // heavily, and everything must still arrive via pull-retx.
        for s in 0..7u32 {
            net.inject_message(HostId(s), HostId(7), 50_000, s as u64);
        }
        net.run_until(SimTime::from_millis(50));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 7, "all messages recovered after trimming");
        let stats = net.harvest_stats();
        assert!(stats.total_trims() > 0, "trimming must have occurred");
        assert_eq!(stats.total_drops(), 0, "NDP trims instead of dropping");
    }

    #[test]
    fn fair_share_round_robins_flows() {
        let mut net = net(4);
        // Two long messages into one receiver: fair share means they
        // finish at roughly the same time (unlike SRPT run-to-completion).
        net.inject_message(HostId(0), HostId(3), 200_000, 1);
        net.inject_message(HostId(1), HostId(3), 200_000, 2);
        net.run_until(SimTime::from_millis(20));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 2);
        let t1 = evs[0].0.as_micros_f64();
        let t2 = evs[1].0.as_micros_f64();
        assert!((t2 - t1).abs() < 0.25 * t2.max(t1), "fair share: {t1} vs {t2}");
    }
}
