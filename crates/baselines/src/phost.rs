//! pHost (Gao et al., CoNEXT 2015) on the shared fabric.
//!
//! pHost is the receiver-driven scheduler closest to Homa (§2.2, §7 of
//! the Homa paper). Mechanisms modelled, per the original paper and the
//! Homa paper's description:
//!
//! * a sender announces each message with an RTS and may transmit the
//!   first RTTbytes as *free* (token-less) packets;
//! * the receiver paces out one token per packet-time of its downlink,
//!   always to the pending message with the fewest remaining bytes
//!   (SRPT), with at most a BDP of tokens outstanding per message —
//!   **no overcommitment**: one message is scheduled at a time;
//! * if a granted sender stays silent past a timeout the receiver
//!   *downgrades* it for a while and gives its tokens to other messages;
//! * only two static priorities: RTS/free/control packets travel high,
//!   scheduled data travels low.
//!
//! The limitations the Homa paper demonstrates — a single priority level
//! for all blind transmissions, preemption lag for multi-RTT messages,
//! and wasted downlink bandwidth when senders do not respond to tokens
//! (Figures 12/15) — all emerge from these mechanics.

use crate::common::{
    full_packet_time_ns, ns, CtrlQueue, FlowId, FlowTable, ReassemblyTable, TickTimer, TxBody,
    CTRL_BYTES, DATA_OVERHEAD, MAX_PAYLOAD, RTT_BYTES,
};
use homa_sim::{
    HostId, Packet, PacketMeta, SimDuration, SimTime, TimerToken, Transport, TransportActions,
};

/// pHost configuration.
#[derive(Debug, Clone)]
pub struct PhostConfig {
    /// Free (token-less) bytes at the head of each message.
    pub free_bytes: u64,
    /// Maximum tokens outstanding per message, in bytes.
    pub token_window: u64,
    /// Downlink speed used to pace tokens, bits/second.
    pub link_bps: u64,
    /// Silence threshold after which a granted sender is downgraded, ns.
    pub downgrade_ns: u64,
    /// How long a downgraded sender stays penalized, ns.
    pub penalty_ns: u64,
}

impl Default for PhostConfig {
    fn default() -> Self {
        PhostConfig {
            free_bytes: RTT_BYTES,
            token_window: RTT_BYTES,
            link_bps: 10_000_000_000,
            downgrade_ns: 30_000,
            penalty_ns: 100_000,
        }
    }
}

/// Packet metadata for pHost.
#[derive(Debug, Clone)]
pub enum PhostMeta {
    /// Request-to-send: announces a message.
    Rts {
        /// Message identity.
        flow: FlowId,
        /// Message length.
        msg_len: u64,
    },
    /// One packet's worth of transmission credit.
    Token {
        /// Message being granted.
        flow: FlowId,
        /// Byte offset this token authorizes.
        offset: u64,
    },
    /// Data segment.
    Data {
        /// Message identity.
        flow: FlowId,
        /// Message length.
        msg_len: u64,
        /// Offset of this segment.
        offset: u64,
        /// Payload bytes.
        payload: u32,
        /// True for token-less (free) packets — they travel at the high
        /// static priority.
        free: bool,
        /// Application tag.
        tag: u64,
    },
}

/// pHost's two static priorities (of the 8 available, it uses 2).
const HIGH: u8 = 7;
const LOW: u8 = 0;

impl PacketMeta for PhostMeta {
    fn wire_bytes(&self) -> u32 {
        match self {
            PhostMeta::Data { payload, .. } => payload + DATA_OVERHEAD,
            _ => CTRL_BYTES,
        }
    }
    fn priority(&self) -> u8 {
        match self {
            PhostMeta::Data { free, .. } => {
                if *free {
                    HIGH
                } else {
                    LOW
                }
            }
            _ => HIGH,
        }
    }
    fn is_control(&self) -> bool {
        !matches!(self, PhostMeta::Data { .. })
    }
    fn goodput_bytes(&self) -> u32 {
        match self {
            PhostMeta::Data { payload, .. } => *payload,
            _ => 0,
        }
    }
}

/// Sender-side flow state: grant level on top of the shared body.
#[derive(Debug)]
struct TxMsg {
    body: TxBody,
    /// Bytes authorized (free prefix + tokens).
    granted: u64,
}

/// Receiver-side token-scheduler state, hung off the shared reassembly
/// entry.
#[derive(Debug, Default)]
struct RxSched {
    /// Bytes granted via tokens (absolute offset; starts at free prefix).
    granted: u64,
    /// Last data arrival.
    last_data: u64,
    /// Penalized (downgraded) until this time.
    penalized_until: u64,
}

const PACER_TOKEN: TimerToken = TimerToken(4);

/// The pHost transport instance for one host.
pub struct PhostTransport {
    me: HostId,
    cfg: PhostConfig,
    next_seq: u64,
    tx: FlowTable<FlowId, TxMsg>,
    rx: ReassemblyTable<RxSched>,
    ctrl: CtrlQueue<PhostMeta>,
    pacer: TickTimer,
}

impl PhostTransport {
    /// New pHost transport for host `me`.
    pub fn new(me: HostId, cfg: PhostConfig) -> Self {
        let gap = SimDuration::from_nanos(full_packet_time_ns(cfg.link_bps));
        PhostTransport {
            me,
            cfg,
            next_seq: 1,
            tx: FlowTable::new(),
            rx: ReassemblyTable::new(),
            ctrl: CtrlQueue::new(),
            pacer: TickTimer::new(PACER_TOKEN, gap),
        }
    }

    /// The receiver's token pass: pick the SRPT-best eligible message and
    /// credit one packet.
    fn issue_token(&mut self, now: SimTime) {
        let t = ns(now);
        let window = self.cfg.token_window;
        let best = self
            .rx
            .iter()
            .filter(|(_, f)| {
                !f.msg.complete()
                    && f.ext.granted < f.msg.len
                    && f.ext.granted.saturating_sub(f.msg.received()) < window
                    && f.ext.penalized_until <= t
            })
            // Full FlowId in the rank: `seq` alone collides across
            // senders and would leave ties to HashMap iteration order,
            // breaking seeded-run reproducibility.
            .min_by_key(|(id, f)| (f.msg.remaining(), **id))
            .map(|(id, _)| *id);
        if let Some(id) = best {
            let f = self.rx.get_mut(&id).expect("chosen flow");
            let offset = f.ext.granted;
            f.ext.granted = (f.ext.granted + MAX_PAYLOAD as u64).min(f.msg.len);
            self.ctrl.push(id.src, PhostMeta::Token { flow: id, offset });
        }
    }

    /// Downgrade granted-but-silent senders (pHost's timeout mechanism).
    fn downgrade_silent(&mut self, now: SimTime) {
        let t = ns(now);
        let free_bytes = self.cfg.free_bytes;
        let downgrade_ns = self.cfg.downgrade_ns;
        let penalty_ns = self.cfg.penalty_ns;
        for f in self.rx.values_mut() {
            if f.ext.granted > f.msg.received()
                && f.ext.penalized_until <= t
                && t.saturating_sub(f.ext.last_data) > downgrade_ns
            {
                f.ext.penalized_until = t + penalty_ns;
                // Rescind unused credit so it can be re-issued to others.
                f.ext.granted = f.msg.received().max(free_bytes.min(f.msg.len));
            }
        }
    }
}

impl Transport<PhostMeta> for PhostTransport {
    fn on_packet(&mut self, now: SimTime, pkt: Packet<PhostMeta>, act: &mut TransportActions) {
        match pkt.meta {
            PhostMeta::Rts { flow, msg_len } => {
                let free = self.cfg.free_bytes;
                // A late RTS for a delivered message is dropped by the
                // tombstone check inside upsert_with.
                let _ = self.rx.upsert_with(flow, msg_len, 0, ns(now), || RxSched {
                    granted: free.min(msg_len),
                    last_data: ns(now),
                    penalized_until: 0,
                });
                self.pacer.ensure(now, act);
            }
            PhostMeta::Token { flow, offset } => {
                if let Some(m) = self.tx.get_mut(flow) {
                    let end = (offset + MAX_PAYLOAD as u64).min(m.body.len);
                    if end > m.granted {
                        m.granted = end;
                    }
                    act.kick_tx();
                }
            }
            PhostMeta::Data { flow, msg_len, offset, payload, tag, .. } => {
                let free = self.cfg.free_bytes;
                let fresh_entry = self
                    .rx
                    .upsert_with(flow, msg_len, tag, ns(now), || RxSched {
                        granted: free.min(msg_len),
                        last_data: ns(now),
                        penalized_until: 0,
                    })
                    .is_some();
                if fresh_entry {
                    self.rx.record(flow, offset, payload, tag);
                    let f = self.rx.get_mut(&flow).expect("just upserted");
                    f.ext.last_data = ns(now);
                    f.ext.penalized_until = 0;
                    self.rx.deliver_if_complete(flow, act);
                }
                self.pacer.ensure(now, act);
            }
        }
    }

    fn on_timer(&mut self, now: SimTime, token: TimerToken, act: &mut TransportActions) {
        debug_assert!(self.pacer.matches(token));
        self.downgrade_silent(now);
        self.issue_token(now);
        if !self.ctrl.is_empty() {
            act.kick_tx();
        }
        // Keep pacing while there is anything to schedule.
        if self.rx.any_incomplete() {
            self.pacer.rearm(now, act);
        } else {
            self.pacer.disarm();
        }
    }

    fn next_packet(&mut self, _now: SimTime) -> Option<Packet<PhostMeta>> {
        if let Some(pkt) = self.ctrl.pop_packet(self.me) {
            return Some(pkt);
        }
        // SRPT among messages with authorized bytes.
        let flow = self.tx.select_min(|f, m| {
            m.body.has_work(m.granted).then(|| (m.body.len - m.body.fresh, f.seq))
        })?;
        let m = self.tx.get_mut(flow).expect("selected");
        let (offset, payload, _) = m.body.next_chunk(m.granted).expect("has_work");
        let free = offset < self.cfg.free_bytes;
        let pkt =
            PhostMeta::Data { flow, msg_len: m.body.len, offset, payload, free, tag: m.body.tag };
        let dst = m.body.dst;
        if m.body.fresh >= m.body.len {
            self.tx.remove(flow);
        }
        Some(Packet::new(self.me, dst, pkt))
    }

    fn inject_message(
        &mut self,
        _now: SimTime,
        dst: HostId,
        len: u64,
        tag: u64,
        act: &mut TransportActions,
    ) {
        let flow = FlowId { src: self.me, seq: self.next_seq };
        self.next_seq += 1;
        let granted = self.cfg.free_bytes.min(len);
        self.tx.insert(flow, TxMsg { body: TxBody::new(dst, len, tag), granted });
        self.ctrl.push(dst, PhostMeta::Rts { flow, msg_len: len });
        act.kick_tx();
    }

    fn delivered_bytes(&self) -> u64 {
        self.rx.delivered_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homa_sim::{AppEvent, Network, NetworkConfig, Topology};

    fn net(n: u32) -> Network<PhostMeta, PhostTransport> {
        Network::new(Topology::single_switch(n), NetworkConfig::default(), |h| {
            PhostTransport::new(h, PhostConfig::default())
        })
    }

    #[test]
    fn small_message_free_window_only() {
        let mut net = net(4);
        net.inject_message(HostId(0), HostId(1), 5_000, 1);
        net.run_until(SimTime::from_millis(2));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 1);
        // Under the free window, latency is close to raw serialization.
        assert!(evs[0].0.as_micros_f64() < 10.0);
    }

    #[test]
    fn zero_length_message_delivers() {
        let mut net = net(4);
        net.inject_message(HostId(0), HostId(1), 0, 12);
        net.run_until(SimTime::from_millis(1));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 1, "empty message announces itself with one packet");
        assert!(matches!(evs[0].2, AppEvent::MessageDelivered { len: 0, tag: 12, .. }));
    }

    #[test]
    fn large_message_paced_by_tokens() {
        let mut net = net(4);
        net.inject_message(HostId(0), HostId(1), 500_000, 2);
        net.run_until(SimTime::from_millis(10));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 1, "token pacing sustains the transfer");
        // ~0.43ms of serialization; allow pacing overhead.
        assert!(evs[0].0.as_micros_f64() < 800.0, "took {}us", evs[0].0.as_micros_f64());
    }

    #[test]
    fn srpt_scheduling_among_inbound() {
        let mut net = net(4);
        net.inject_message(HostId(0), HostId(3), 1_000_000, 1);
        net.inject_message(HostId(1), HostId(3), 50_000, 2);
        net.run_until(SimTime::from_millis(30));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 2);
        assert!(
            matches!(evs[0].2, AppEvent::MessageDelivered { tag: 2, .. }),
            "receiver tokens favour the shorter message"
        );
    }

    #[test]
    fn all_messages_complete_under_fanin() {
        let mut net = net(8);
        for s in 0..7u32 {
            net.inject_message(HostId(s), HostId(7), 60_000, s as u64);
        }
        net.run_until(SimTime::from_millis(20));
        assert_eq!(net.take_app_events().len(), 7);
    }
}
