//! Shared scaffolding for the baseline transports.
//!
//! Every non-Homa transport in this crate (pFabric, pHost, PIAS, NDP,
//! and the TCP-like stream) needs the same mechanical substrate:
//! message fragmentation, per-flow reassembly with delivery accounting,
//! a send queue with a protocol-specific ordering policy, lazily
//! cancelled timers, and a control-packet queue that drains ahead of
//! data. This module implements each of those once, so a baseline file
//! contains only the protocol's actual scheduling/priority/recovery
//! logic:
//!
//! * [`ReassemblyTable`] — per-flow inbound reassembly over the protocol
//!   core's `InboundMessage`, with delivery events and goodput
//!   accounting; generic over per-flow extension state (pHost hangs its
//!   token-scheduler fields off it).
//! * [`FlowTable`] + [`TxBody`] — sender-side flow state with the three
//!   orderings the baselines use: SRPT-style `select_min`, FIFO (a
//!   degenerate `select_min` on arrival sequence), and round-robin
//!   `select_rr`; `TxBody` owns fragmentation (retransmissions first,
//!   then fresh bytes up to a caller-supplied limit).
//! * [`TickTimer`] — the arm-once/lazily-cancel periodic timer pattern
//!   required by the simulator's non-cancellable timers.
//! * [`CtrlQueue`] — queued control packets, drained by `next_packet`
//!   before any data (the fabric serves control at high priority; the
//!   sender must do the same).

use homa::messages::InboundMessage;
use homa::packets::{Dir, MsgKey, PeerId};
use homa_sim::{AppEvent, HostId, Packet, SimDuration, SimTime, TimerToken, TransportActions};
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// Maximum application payload per data packet, shared by all transports
/// so comparisons are apples-to-apples (the paper's simulations use
/// 1500-byte Ethernet frames; 1400 payload + 60 header + framing
/// approximates that, and matches the Homa core's default).
pub const MAX_PAYLOAD: u32 = 1_400;
/// Wire overhead of a data packet beyond its payload.
pub const DATA_OVERHEAD: u32 = 60;
/// Wire size of control packets (tokens, acks, pulls, RTS...).
pub const CTRL_BYTES: u32 = 40;
/// Default RTTbytes on the paper's 10 Gbps fabric.
pub const RTT_BYTES: u64 = 9_700;

/// Identity of a message/flow within a baseline transport: sending host
/// plus a sender-local sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId {
    /// Sending host.
    pub src: HostId,
    /// Sender-local sequence number.
    pub seq: u64,
}

impl FlowId {
    /// The protocol-core message key for this flow (baselines reuse the
    /// core's reassembly buffers, which are keyed by [`MsgKey`]).
    pub fn msg_key(&self) -> MsgKey {
        MsgKey { origin: PeerId(self.src.0), seq: self.seq, dir: Dir::Oneway }
    }
}

/// Number of data packets for a message of `len` bytes. A zero-length
/// message still occupies one (empty) packet: the receiver must learn
/// of it to deliver it.
pub fn packets_for(len: u64) -> u64 {
    len.div_ceil(MAX_PAYLOAD as u64).max(1)
}

/// Payload size of the packet at `offset` within a message of `len`
/// bytes. Offsets at or past the end of the message (possible with
/// stale retransmissions) yield an empty payload rather than an
/// underflow.
pub fn payload_at(len: u64, offset: u64) -> u32 {
    (len.saturating_sub(offset).min(MAX_PAYLOAD as u64)) as u32
}

/// Serialization time of one full-size data packet on a host link, in
/// nanoseconds — the natural pacing quantum for token/pull schedulers.
pub fn full_packet_time_ns(link_bps: u64) -> u64 {
    ((MAX_PAYLOAD + DATA_OVERHEAD) as u128 * 8 * 1_000_000_000).div_ceil(link_bps as u128) as u64
}

/// Convert a [`SimTime`] to integer nanoseconds (the protocol cores use
/// raw nanoseconds).
pub fn ns(t: SimTime) -> u64 {
    t.as_nanos()
}

// ---------------------------------------------------------------------
// Receive side: per-flow reassembly.
// ---------------------------------------------------------------------

/// One inbound flow: the core's reassembly state plus the
/// application tag and protocol-specific extension state `X`.
#[derive(Debug)]
pub struct RxEntry<X = ()> {
    /// Reassembly state (which byte ranges have arrived).
    pub msg: InboundMessage,
    /// Application tag echoed in the delivery event. Carried in data
    /// packets; authoritative once the offset-0 packet arrives.
    pub tag: u64,
    /// Protocol-specific per-flow receiver state.
    pub ext: X,
}

/// Receiver-side flow table: creates reassembly state on first contact,
/// folds in data packets, and converts completion into a
/// [`AppEvent::MessageDelivered`] plus goodput accounting.
///
/// Delivered flows leave a tombstone behind: a late duplicate (e.g. a
/// retransmission whose ack was lost) must not rebuild reassembly
/// state and deliver the same message twice. [`Self::upsert_with`]
/// returns `None` for such flows so callers can re-ack/re-notify the
/// sender without touching receive state. Tombstones are flow ids
/// only, so the cost is a few words per completed message.
#[derive(Debug, Default)]
pub struct ReassemblyTable<X = ()> {
    flows: HashMap<FlowId, RxEntry<X>>,
    delivered: std::collections::HashSet<FlowId>,
    delivered_bytes: u64,
}

impl<X> ReassemblyTable<X> {
    /// Empty table.
    pub fn new() -> Self {
        ReassemblyTable {
            flows: HashMap::new(),
            delivered: std::collections::HashSet::new(),
            delivered_bytes: 0,
        }
    }

    /// True when `flow` has already been delivered to the application.
    pub fn is_delivered(&self, flow: &FlowId) -> bool {
        self.delivered.contains(flow)
    }

    /// Get-or-create the entry for `flow`, building extension state with
    /// `mk_ext` on first contact. Returns `None` if the flow has
    /// already been delivered (late duplicate — do not rebuild state).
    pub fn upsert_with(
        &mut self,
        flow: FlowId,
        msg_len: u64,
        tag: u64,
        now_ns: u64,
        mk_ext: impl FnOnce() -> X,
    ) -> Option<&mut RxEntry<X>> {
        if self.delivered.contains(&flow) {
            return None;
        }
        Some(self.flows.entry(flow).or_insert_with(|| RxEntry {
            msg: InboundMessage::new(flow.msg_key(), PeerId(flow.src.0), msg_len, now_ns),
            tag,
            ext: mk_ext(),
        }))
    }

    /// Get-or-create with default extension state. Returns `None` for
    /// already-delivered flows (see [`Self::upsert_with`]).
    pub fn upsert(
        &mut self,
        flow: FlowId,
        msg_len: u64,
        tag: u64,
        now_ns: u64,
    ) -> Option<&mut RxEntry<X>>
    where
        X: Default,
    {
        self.upsert_with(flow, msg_len, tag, now_ns, X::default)
    }

    /// Fold one data packet into `flow` (which must exist): refresh the
    /// tag if this is the offset-0 packet, record the bytes, and report
    /// progress. Delivery is a separate step ([`Self::deliver_if_complete`])
    /// so protocols can emit acks/pulls against the updated state first.
    pub fn record(&mut self, flow: FlowId, offset: u64, payload: u32, tag: u64) -> RxProgress {
        let e = self.flows.get_mut(&flow).expect("record on unknown flow");
        if offset == 0 {
            e.tag = tag;
        }
        e.msg.record(offset, payload as u64);
        RxProgress { complete: e.msg.complete(), contiguous: e.msg.contiguous() }
    }

    /// If `flow` has fully arrived, retire it: count its bytes as
    /// delivered, emit [`AppEvent::MessageDelivered`], and drop the
    /// entry. Returns whether delivery happened.
    pub fn deliver_if_complete(&mut self, flow: FlowId, act: &mut TransportActions) -> bool {
        let complete = self.flows.get(&flow).is_some_and(|e| e.msg.complete());
        if complete {
            let e = self.flows.remove(&flow).expect("checked above");
            let len = e.msg.len;
            self.delivered_bytes += len;
            self.delivered.insert(flow);
            act.event(AppEvent::MessageDelivered { src: flow.src, tag: e.tag, len });
        }
        complete
    }

    /// Entry lookup.
    pub fn get(&self, flow: &FlowId) -> Option<&RxEntry<X>> {
        self.flows.get(flow)
    }

    /// Mutable entry lookup.
    pub fn get_mut(&mut self, flow: &FlowId) -> Option<&mut RxEntry<X>> {
        self.flows.get_mut(flow)
    }

    /// Iterate (flow, entry) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&FlowId, &RxEntry<X>)> {
        self.flows.iter()
    }

    /// Iterate entries mutably.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut RxEntry<X>> {
        self.flows.values_mut()
    }

    /// True while any tracked flow is still incomplete (drives pacer
    /// continuation in the receiver-driven baselines).
    pub fn any_incomplete(&self) -> bool {
        self.flows.values().any(|e| !e.msg.complete())
    }

    /// Application bytes delivered so far (the transport goodput
    /// counter).
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_bytes
    }
}

/// Progress report from [`ReassemblyTable::record`].
#[derive(Debug, Clone, Copy)]
pub struct RxProgress {
    /// All bytes of the message have arrived.
    pub complete: bool,
    /// Contiguous prefix length (cumulative-ack point).
    pub contiguous: u64,
}

// ---------------------------------------------------------------------
// Send side: fragmentation and flow selection.
// ---------------------------------------------------------------------

/// The fragmentation core of one outbound message/stream: which bytes
/// have been sent fresh, and which offsets are queued for
/// retransmission. Protocol-specific window state (acks, grants, cwnd)
/// lives in the surrounding per-protocol struct.
///
/// A zero-length message still announces itself with exactly one empty
/// packet (matching [`packets_for`]); the message-oriented transports
/// deliver it from that packet alone. (The byte-stream transport
/// cannot: stream message boundaries travel with payload bytes, so
/// zero-length messages are outside its model.)
#[derive(Debug)]
pub struct TxBody {
    /// Destination host.
    pub dst: HostId,
    /// Total length in bytes (for streams: bytes enqueued so far).
    pub len: u64,
    /// Application tag.
    pub tag: u64,
    /// Next never-sent byte offset.
    pub fresh: u64,
    /// Offsets queued for retransmission (served before fresh bytes).
    pub retx: VecDeque<u64>,
    /// Whether the single empty packet of a zero-length message has
    /// been emitted.
    announced: bool,
}

impl TxBody {
    /// New body for a `len`-byte message to `dst`.
    pub fn new(dst: HostId, len: u64, tag: u64) -> Self {
        TxBody { dst, len, tag, fresh: 0, retx: VecDeque::new(), announced: false }
    }

    /// Queue `offset` for retransmission unless already queued.
    pub fn queue_retx(&mut self, offset: u64) {
        if !self.retx.contains(&offset) {
            self.retx.push_back(offset);
        }
    }

    /// Drop a pending retransmission (e.g. the ack overtook the loss
    /// signal).
    pub fn cancel_retx(&mut self, offset: u64) {
        self.retx.retain(|&o| o != offset);
    }

    /// True when a call to [`Self::next_chunk`] with the same
    /// `fresh_limit` would produce a packet.
    pub fn has_work(&self, fresh_limit: u64) -> bool {
        !self.retx.is_empty()
            || self.fresh < fresh_limit.min(self.len)
            || (self.len == 0 && !self.announced)
    }

    /// Take the next chunk to transmit: queued retransmissions first,
    /// then fresh bytes while `fresh < fresh_limit` (callers pass their
    /// window/grant/credit limit; it is clamped to the message length).
    /// Fresh payloads stop at the credit boundary, so byte-precise
    /// windows (pHost tokens, DCTCP cwnd, stream windows) are honoured
    /// exactly. Returns `(offset, payload_bytes, is_retransmission)`.
    pub fn next_chunk(&mut self, fresh_limit: u64) -> Option<(u64, u32, bool)> {
        if let Some(offset) = self.retx.pop_front() {
            return Some((offset, payload_at(self.len, offset), true));
        }
        if let Some(empty) = self.take_empty_announcement() {
            return Some(empty);
        }
        let limit = fresh_limit.min(self.len);
        if self.fresh < limit {
            let offset = self.fresh;
            let payload = (limit - offset).min(MAX_PAYLOAD as u64) as u32;
            self.fresh += payload as u64;
            return Some((offset, payload, false));
        }
        None
    }

    /// Like [`Self::next_chunk`], but fresh packets are always
    /// full-size (up to the message end): the limit is an eligibility
    /// threshold rather than a byte-precise cap. This is NDP's
    /// whole-packet credit model, where the blind window may be
    /// exceeded by the tail of the packet that crosses it.
    pub fn next_chunk_whole(&mut self, fresh_limit: u64) -> Option<(u64, u32, bool)> {
        if let Some(offset) = self.retx.pop_front() {
            return Some((offset, payload_at(self.len, offset), true));
        }
        if let Some(empty) = self.take_empty_announcement() {
            return Some(empty);
        }
        if self.fresh < fresh_limit.min(self.len) {
            let offset = self.fresh;
            let payload = payload_at(self.len, offset);
            self.fresh += payload as u64;
            return Some((offset, payload, false));
        }
        None
    }

    /// The one empty packet a zero-length message owes the receiver,
    /// if it has not been emitted yet.
    fn take_empty_announcement(&mut self) -> Option<(u64, u32, bool)> {
        if self.len == 0 && !self.announced {
            self.announced = true;
            return Some((0, 0, false));
        }
        None
    }
}

/// Sender-side flow table with the orderings the baselines need.
///
/// Keys are small `Copy` identifiers ([`FlowId`], or [`HostId`] for the
/// per-destination stream transport). Insertion order is retained: it
/// is the round-robin ring for [`Self::select_rr`] and the arrival
/// sequence for FIFO policies.
#[derive(Debug)]
pub struct FlowTable<K, S> {
    map: HashMap<K, S>,
    ring: Vec<K>,
    rr_next: usize,
}

impl<K: Copy + Eq + Hash, S> Default for FlowTable<K, S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Copy + Eq + Hash, S> FlowTable<K, S> {
    /// Empty table.
    pub fn new() -> Self {
        FlowTable { map: HashMap::new(), ring: Vec::new(), rr_next: 0 }
    }

    /// Insert a new flow (keys must be unique).
    pub fn insert(&mut self, key: K, state: S) {
        let prev = self.map.insert(key, state);
        debug_assert!(prev.is_none(), "duplicate flow key");
        self.ring.push(key);
    }

    /// Remove a flow, keeping the round-robin cursor coherent.
    pub fn remove(&mut self, key: K) -> Option<S> {
        let state = self.map.remove(&key)?;
        if let Some(pos) = self.ring.iter().position(|&k| k == key) {
            self.ring.remove(pos);
            if pos < self.rr_next {
                self.rr_next -= 1;
            }
            if self.rr_next >= self.ring.len() {
                self.rr_next = 0;
            }
        }
        Some(state)
    }

    /// True when `key` is tracked.
    pub fn contains(&self, key: K) -> bool {
        self.map.contains_key(&key)
    }

    /// Shared state lookup.
    pub fn get(&self, key: K) -> Option<&S> {
        self.map.get(&key)
    }

    /// Mutable state lookup.
    pub fn get_mut(&mut self, key: K) -> Option<&mut S> {
        self.map.get_mut(&key)
    }

    /// Number of flows.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no flows are tracked.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate (key, state) pairs (hash order).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &S)> {
        self.map.iter()
    }

    /// Iterate states mutably (hash order).
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut S> {
        self.map.values_mut()
    }

    /// Pick the eligible flow minimizing `rank` (SRPT and friends;
    /// FIFO is `rank = arrival seq`). Returning `None` from `rank`
    /// marks a flow ineligible. Ties break on the rank's own ordering,
    /// so include a unique component (e.g. `FlowId::seq`) for
    /// determinism.
    pub fn select_min<R: Ord>(&self, mut rank: impl FnMut(K, &S) -> Option<R>) -> Option<K> {
        self.map
            .iter()
            .filter_map(|(&k, s)| rank(k, s).map(|r| (r, k)))
            .min_by(|a, b| a.0.cmp(&b.0))
            .map(|(_, k)| k)
    }

    /// Pick the next eligible flow in round-robin order and advance the
    /// cursor past it.
    pub fn select_rr(&mut self, mut eligible: impl FnMut(K, &mut S) -> bool) -> Option<K> {
        let n = self.ring.len();
        for step in 0..n {
            let idx = (self.rr_next + step) % n;
            let key = self.ring[idx];
            let state = self.map.get_mut(&key).expect("ring key in map");
            if eligible(key, state) {
                self.rr_next = (idx + 1) % n;
                return Some(key);
            }
        }
        None
    }
}

// ---------------------------------------------------------------------
// Timers and control queues.
// ---------------------------------------------------------------------

/// The arm-once / lazily-cancelled periodic timer every baseline needs.
///
/// The simulator's timers cannot be cancelled (see
/// [`homa_sim::Transport::on_timer`]); the working pattern is: arm at
/// most one outstanding timer, re-arm from the timer callback while
/// work remains, and mark disarmed otherwise so stale fires are cheap
/// no-ops.
#[derive(Debug)]
pub struct TickTimer {
    token: TimerToken,
    period: SimDuration,
    armed: bool,
}

impl TickTimer {
    /// Timer identified by `token`, firing every `period`.
    pub fn new(token: TimerToken, period: SimDuration) -> Self {
        TickTimer { token, period, armed: false }
    }

    /// Arm the timer if it is not already pending.
    pub fn ensure(&mut self, now: SimTime, act: &mut TransportActions) {
        if !self.armed {
            self.armed = true;
            act.timer_after(now, self.period, self.token);
        }
    }

    /// Schedule the next tick unconditionally (call from the timer
    /// callback to keep a periodic timer running).
    pub fn rearm(&mut self, now: SimTime, act: &mut TransportActions) {
        self.armed = true;
        act.timer_after(now, self.period, self.token);
    }

    /// Stop re-arming; an already-scheduled fire becomes a no-op whose
    /// only effect is re-entering [`homa_sim::Transport::on_timer`].
    pub fn disarm(&mut self) {
        self.armed = false;
    }

    /// Whether `token` identifies this timer.
    pub fn matches(&self, token: TimerToken) -> bool {
        self.token == token
    }
}

/// Queued control packets, drained ahead of data.
///
/// `next_packet` implementations call [`Self::pop_packet`] first, which
/// keeps the sim-layer contract that control precedes data at the
/// sender.
#[derive(Debug)]
pub struct CtrlQueue<M> {
    q: VecDeque<(HostId, M)>,
}

impl<M> Default for CtrlQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> CtrlQueue<M> {
    /// Empty queue.
    pub fn new() -> Self {
        CtrlQueue { q: VecDeque::new() }
    }

    /// Queue `meta` for transmission to `dst`.
    pub fn push(&mut self, dst: HostId, meta: M) {
        self.q.push_back((dst, meta));
    }

    /// Take the oldest queued control packet as a wire packet from `me`.
    pub fn pop_packet(&mut self, me: HostId) -> Option<Packet<M>>
    where
        M: homa_sim::PacketMeta,
    {
        self.q.pop_front().map(|(dst, meta)| Packet::new(me, dst, meta))
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_math() {
        assert_eq!(packets_for(1), 1);
        assert_eq!(packets_for(1_400), 1);
        assert_eq!(packets_for(1_401), 2);
        assert_eq!(payload_at(1_401, 0), 1_400);
        assert_eq!(payload_at(1_401, 1_400), 1);
        assert_eq!(payload_at(100, 0), 100);
    }

    #[test]
    fn zero_length_message_still_one_packet() {
        // A 0-byte message must still announce itself with one (empty)
        // packet, and its only packet carries no payload.
        assert_eq!(packets_for(0), 1);
        assert_eq!(payload_at(0, 0), 0);
    }

    #[test]
    fn payload_at_never_underflows() {
        // Stale retransmission offsets past the end of the message must
        // yield an empty payload, not a subtraction overflow.
        assert_eq!(payload_at(100, 100), 0);
        assert_eq!(payload_at(100, 1_000_000), 0);
        assert_eq!(payload_at(0, 1), 0);
    }

    #[test]
    fn full_packet_time() {
        // 1460 bytes at 10 Gbps = 1168 ns.
        assert_eq!(full_packet_time_ns(10_000_000_000), 1_168);
    }

    #[test]
    fn tx_body_serves_retx_before_fresh_and_respects_limits() {
        let mut b = TxBody::new(HostId(1), 3_000, 9);
        // First fresh chunk up to a 1500-byte credit limit.
        assert_eq!(b.next_chunk(1_500), Some((0, 1_400, false)));
        // Credit boundary produces a short packet.
        assert_eq!(b.next_chunk(1_500), Some((1_400, 100, false)));
        assert_eq!(b.next_chunk(1_500), None);
        // A queued retransmission outranks fresh bytes.
        b.queue_retx(0);
        b.queue_retx(0); // deduplicated
        assert_eq!(b.next_chunk(3_000), Some((0, 1_400, true)));
        assert_eq!(b.next_chunk(3_000), Some((1_500, 1_400, false)));
        assert_eq!(b.next_chunk(3_000), Some((2_900, 100, false)));
        assert!(!b.has_work(3_000));
    }

    #[test]
    fn flow_table_select_min_is_srpt() {
        let mut t: FlowTable<FlowId, u64> = FlowTable::new();
        let f = |seq| FlowId { src: HostId(0), seq };
        t.insert(f(1), 500);
        t.insert(f(2), 100);
        t.insert(f(3), 900);
        assert_eq!(t.select_min(|k, &rem| Some((rem, k.seq))), Some(f(2)));
        // Ineligible flows are skipped.
        assert_eq!(t.select_min(|k, &rem| (rem > 100).then_some((rem, k.seq))), Some(f(1)));
        t.remove(f(2));
        assert_eq!(t.select_min(|k, &rem| Some((rem, k.seq))), Some(f(1)));
    }

    #[test]
    fn flow_table_round_robin_cycles_fairly() {
        let mut t: FlowTable<HostId, u32> = FlowTable::new();
        for h in 0..3 {
            t.insert(HostId(h), 0);
        }
        let mut picks = Vec::new();
        for _ in 0..6 {
            let k = t.select_rr(|_, _| true).unwrap();
            picks.push(k.0);
        }
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        // Removal keeps the cursor coherent.
        t.remove(HostId(1));
        let k1 = t.select_rr(|_, _| true).unwrap();
        let k2 = t.select_rr(|_, _| true).unwrap();
        assert_ne!(k1, k2);
        assert!(k1 != HostId(1) && k2 != HostId(1));
    }

    #[test]
    fn tx_body_zero_length_announces_exactly_once() {
        // A 0-byte message owes the receiver one empty packet — and only
        // one, whatever the credit limit.
        let mut b = TxBody::new(HostId(1), 0, 3);
        assert!(b.has_work(0), "empty message must still have its announcement to send");
        assert_eq!(b.next_chunk(0), Some((0, 0, false)));
        assert!(!b.has_work(u64::MAX));
        assert_eq!(b.next_chunk(u64::MAX), None);
        // Whole-packet variant behaves identically.
        let mut b = TxBody::new(HostId(1), 0, 3);
        assert_eq!(b.next_chunk_whole(0), Some((0, 0, false)));
        assert_eq!(b.next_chunk_whole(u64::MAX), None);
    }

    #[test]
    fn reassembly_delivers_once_with_goodput() {
        let mut rx: ReassemblyTable = ReassemblyTable::new();
        let flow = FlowId { src: HostId(3), seq: 1 };
        let mut act = TransportActions::new();
        assert!(rx.upsert(flow, 2_000, 7, 0).is_some());
        let p = rx.record(flow, 1_400, 600, 7);
        assert!(!p.complete);
        assert_eq!(p.contiguous, 0);
        assert!(!rx.deliver_if_complete(flow, &mut act));
        let p = rx.record(flow, 0, 1_400, 7);
        assert!(p.complete);
        assert_eq!(p.contiguous, 2_000);
        assert!(rx.deliver_if_complete(flow, &mut act));
        // Gone after delivery; bytes counted exactly once.
        assert!(!rx.deliver_if_complete(flow, &mut act));
        assert_eq!(rx.delivered_bytes(), 2_000);
        assert!(rx.get(&flow).is_none());
    }

    #[test]
    fn reassembly_tombstones_block_duplicate_delivery() {
        // A retransmission arriving after delivery (its acks were lost)
        // must not rebuild state and deliver the message twice.
        let mut rx: ReassemblyTable = ReassemblyTable::new();
        let flow = FlowId { src: HostId(2), seq: 9 };
        let mut act = TransportActions::new();
        rx.upsert(flow, 500, 1, 0).expect("fresh flow");
        rx.record(flow, 0, 500, 1);
        assert!(rx.deliver_if_complete(flow, &mut act));
        assert!(rx.is_delivered(&flow));
        // The late duplicate is refused; goodput unchanged.
        assert!(rx.upsert(flow, 500, 1, 10).is_none());
        assert!(!rx.deliver_if_complete(flow, &mut act));
        assert_eq!(rx.delivered_bytes(), 500);
        assert_eq!(
            act.events().iter().filter(|e| matches!(e, AppEvent::MessageDelivered { .. })).count(),
            1
        );
    }

    #[test]
    fn reassembly_tag_refreshes_on_first_packet() {
        // Entries created by a non-first packet carry a provisional tag
        // until offset 0 arrives (pHost creates entries from RTS with no
        // tag at all).
        let mut rx: ReassemblyTable = ReassemblyTable::new();
        let flow = FlowId { src: HostId(1), seq: 4 };
        rx.upsert(flow, 2_000, 999, 0).expect("fresh flow");
        rx.record(flow, 1_400, 600, 999);
        rx.record(flow, 0, 1_400, 42);
        let mut act = TransportActions::new();
        assert!(rx.deliver_if_complete(flow, &mut act));
        assert_eq!(rx.delivered_bytes(), 2_000);
    }
}
