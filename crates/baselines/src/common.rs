//! Shared pieces for the baseline transports.

use homa_sim::{HostId, SimTime};

/// Maximum application payload per data packet, shared by all transports
/// so comparisons are apples-to-apples (the paper's simulations use
/// 1500-byte Ethernet frames; 1400 payload + 60 header + framing
/// approximates that, and matches the Homa core's default).
pub const MAX_PAYLOAD: u32 = 1_400;
/// Wire overhead of a data packet beyond its payload.
pub const DATA_OVERHEAD: u32 = 60;
/// Wire size of control packets (tokens, acks, pulls, RTS...).
pub const CTRL_BYTES: u32 = 40;
/// Default RTTbytes on the paper's 10 Gbps fabric.
pub const RTT_BYTES: u64 = 9_700;

/// Identity of a message/flow within a baseline transport: sending host
/// plus a sender-local sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId {
    /// Sending host.
    pub src: HostId,
    /// Sender-local sequence number.
    pub seq: u64,
}

/// Number of data packets for a message of `len` bytes.
pub fn packets_for(len: u64) -> u64 {
    len.div_ceil(MAX_PAYLOAD as u64).max(1)
}

/// Payload size of the packet at `offset` within a message of `len` bytes.
pub fn payload_at(len: u64, offset: u64) -> u32 {
    ((len - offset).min(MAX_PAYLOAD as u64)) as u32
}

/// Serialization time of one full-size data packet on a host link, in
/// nanoseconds — the natural pacing quantum for token/pull schedulers.
pub fn full_packet_time_ns(link_bps: u64) -> u64 {
    ((MAX_PAYLOAD + DATA_OVERHEAD) as u128 * 8 * 1_000_000_000)
        .div_ceil(link_bps as u128) as u64
}

/// Convert a [`SimTime`] to integer nanoseconds (the protocol cores use
/// raw nanoseconds).
pub fn ns(t: SimTime) -> u64 {
    t.as_nanos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_math() {
        assert_eq!(packets_for(1), 1);
        assert_eq!(packets_for(1_400), 1);
        assert_eq!(packets_for(1_401), 2);
        assert_eq!(payload_at(1_401, 0), 1_400);
        assert_eq!(payload_at(1_401, 1_400), 1);
        assert_eq!(payload_at(100, 0), 100);
    }

    #[test]
    fn full_packet_time() {
        // 1460 bytes at 10 Gbps = 1168 ns.
        assert_eq!(full_packet_time_ns(10_000_000_000), 1_168);
    }
}
