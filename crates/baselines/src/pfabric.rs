//! pFabric (Alizadeh et al., SIGCOMM 2013) on the shared fabric.
//!
//! pFabric achieves near-optimal tail latency by pushing SRPT into the
//! switches: every data packet carries the number of bytes remaining in
//! its message, switches dequeue the packet with the *fewest* remaining
//! bytes and, on overflow, drop the queued packet with the *most*. Rate
//! control is minimal: every message starts at line rate with a window of
//! one bandwidth-delay product, relying on priority dropping instead of
//! congestion avoidance; losses are recovered by per-message timeouts.
//!
//! The fabric must be configured with [`homa_sim::QueueKind::Pfabric`]
//! queues and a small per-port buffer (the original paper uses ~2 BDP;
//! see [`PfabricConfig::queue_cap_bytes`]).
//!
//! The Homa paper's observations reproduced here: latency close to Homa's
//! across sizes (Figure 12), but wasted bandwidth from dropped-then-
//! retransmitted packets limits the sustainable load (Figure 15).

use crate::common::{
    ns, payload_at, CtrlQueue, FlowId, FlowTable, ReassemblyTable, TickTimer, TxBody, CTRL_BYTES,
    DATA_OVERHEAD, MAX_PAYLOAD, RTT_BYTES,
};
use homa_sim::{
    HostId, Packet, PacketMeta, SimDuration, SimTime, TimerToken, Transport, TransportActions,
};
use std::collections::BTreeSet;

/// pFabric configuration.
#[derive(Debug, Clone)]
pub struct PfabricConfig {
    /// Per-message window of unacked packets, in bytes (1 BDP).
    pub window: u64,
    /// Per-message retransmission timeout in nanoseconds.
    pub rto_ns: u64,
    /// Suggested per-port buffer for the fabric (2 BDP, per the pFabric
    /// paper). Exposed so the harness configures the switches
    /// consistently.
    pub queue_cap_bytes: u64,
}

impl Default for PfabricConfig {
    fn default() -> Self {
        PfabricConfig { window: RTT_BYTES, rto_ns: 100_000, queue_cap_bytes: 2 * RTT_BYTES * 2 }
    }
}

/// Packet metadata for pFabric.
#[derive(Debug, Clone)]
pub enum PfabricMeta {
    /// A data packet tagged with its message's remaining bytes.
    Data {
        /// Flow (message) identity.
        flow: FlowId,
        /// Total message length.
        msg_len: u64,
        /// Offset of this packet.
        offset: u64,
        /// Payload bytes.
        payload: u32,
        /// Remaining bytes of the message as of transmission — the
        /// in-fabric priority (smaller = more urgent).
        remaining: u64,
        /// Application tag.
        tag: u64,
        /// Retransmission flag (excluded from goodput).
        retx: bool,
    },
    /// Per-packet ack.
    Ack {
        /// Flow the ack belongs to.
        flow: FlowId,
        /// Offset being acknowledged.
        offset: u64,
    },
}

impl PacketMeta for PfabricMeta {
    fn wire_bytes(&self) -> u32 {
        match self {
            PfabricMeta::Data { payload, .. } => payload + DATA_OVERHEAD,
            PfabricMeta::Ack { .. } => CTRL_BYTES,
        }
    }
    fn priority(&self) -> u8 {
        0 // strict-priority levels unused; the Pfabric queue discipline keys on fine_priority
    }
    fn fine_priority(&self) -> Option<u64> {
        match self {
            PfabricMeta::Data { remaining, .. } => Some(*remaining),
            PfabricMeta::Ack { .. } => None, // control: served first, never dropped
        }
    }
    fn is_control(&self) -> bool {
        matches!(self, PfabricMeta::Ack { .. })
    }
    fn goodput_bytes(&self) -> u32 {
        match self {
            PfabricMeta::Data { payload, retx: false, .. } => *payload,
            _ => 0,
        }
    }
}

#[derive(Debug)]
struct TxMsg {
    body: TxBody,
    /// Sent but unacked offsets.
    unacked: BTreeSet<u64>,
    /// Acked byte count.
    acked_bytes: u64,
    /// Last ack progress (for RTO).
    last_progress: u64,
}

impl TxMsg {
    fn remaining(&self) -> u64 {
        self.body.len - self.acked_bytes
    }
    fn window_used(&self) -> u64 {
        self.unacked.len() as u64 * MAX_PAYLOAD as u64
    }
    fn has_sendable(&self, window: u64) -> bool {
        self.body.has_work(self.body.len) && self.window_used() < window
    }
    fn done(&self) -> bool {
        self.acked_bytes >= self.body.len
    }
}

const RTO_TOKEN: TimerToken = TimerToken(3);
const RTO_TICK: SimDuration = SimDuration::from_micros(50);

/// The pFabric transport instance for one host.
pub struct PfabricTransport {
    me: HostId,
    cfg: PfabricConfig,
    next_seq: u64,
    tx: FlowTable<FlowId, TxMsg>,
    rx: ReassemblyTable,
    ctrl: CtrlQueue<PfabricMeta>,
    rto: TickTimer,
}

impl PfabricTransport {
    /// New pFabric transport for host `me`.
    pub fn new(me: HostId, cfg: PfabricConfig) -> Self {
        PfabricTransport {
            me,
            cfg,
            next_seq: 1,
            tx: FlowTable::new(),
            rx: ReassemblyTable::new(),
            ctrl: CtrlQueue::new(),
            rto: TickTimer::new(RTO_TOKEN, RTO_TICK),
        }
    }
}

impl Transport<PfabricMeta> for PfabricTransport {
    fn on_packet(&mut self, now: SimTime, pkt: Packet<PfabricMeta>, act: &mut TransportActions) {
        self.rto.ensure(now, act);
        match pkt.meta {
            PfabricMeta::Data { flow, msg_len, offset, payload, tag, .. } => {
                // Always ack — even late duplicates of a delivered
                // message, so the sender's RTO loop terminates.
                self.ctrl.push(pkt.src, PfabricMeta::Ack { flow, offset });
                if self.rx.upsert(flow, msg_len, tag, ns(now)).is_some() {
                    self.rx.record(flow, offset, payload, tag);
                    self.rx.deliver_if_complete(flow, act);
                }
                act.kick_tx();
            }
            PfabricMeta::Ack { flow, offset } => {
                let mut finished = false;
                if let Some(m) = self.tx.get_mut(flow) {
                    if m.unacked.remove(&offset) {
                        m.acked_bytes += payload_at(m.body.len, offset) as u64;
                        m.last_progress = ns(now);
                    }
                    // An ack also cancels any queued retransmission.
                    m.body.cancel_retx(offset);
                    finished = m.done();
                }
                if finished {
                    self.tx.remove(flow);
                }
                act.kick_tx();
            }
        }
    }

    fn on_timer(&mut self, now: SimTime, _token: TimerToken, act: &mut TransportActions) {
        let mut kick = false;
        for m in self.tx.values_mut() {
            if !m.unacked.is_empty() && ns(now).saturating_sub(m.last_progress) > self.cfg.rto_ns {
                // Requeue all unacked packets (priority dropping means the
                // small-remaining ones almost never get here).
                for &o in m.unacked.iter() {
                    m.body.queue_retx(o);
                }
                m.unacked.clear();
                m.last_progress = ns(now);
                kick = true;
            }
        }
        if kick {
            act.kick_tx();
        }
        self.rto.rearm(now, act);
    }

    fn next_packet(&mut self, _now: SimTime) -> Option<Packet<PfabricMeta>> {
        if let Some(pkt) = self.ctrl.pop_packet(self.me) {
            return Some(pkt);
        }
        // Sender-side SRPT: among messages with window space, fewest
        // remaining bytes first (pFabric hosts transmit their
        // highest-priority flow).
        let window = self.cfg.window;
        let flow =
            self.tx.select_min(|f, m| m.has_sendable(window).then(|| (m.remaining(), f.seq)))?;
        let m = self.tx.get_mut(flow).expect("selected");
        let (offset, payload, retx) = m.body.next_chunk(m.body.len).expect("has_sendable");
        m.unacked.insert(offset);
        Some(Packet::new(
            self.me,
            m.body.dst,
            PfabricMeta::Data {
                flow,
                msg_len: m.body.len,
                offset,
                payload,
                remaining: m.remaining(),
                tag: m.body.tag,
                retx,
            },
        ))
    }

    fn inject_message(
        &mut self,
        now: SimTime,
        dst: HostId,
        len: u64,
        tag: u64,
        act: &mut TransportActions,
    ) {
        self.rto.ensure(now, act);
        let flow = FlowId { src: self.me, seq: self.next_seq };
        self.next_seq += 1;
        self.tx.insert(
            flow,
            TxMsg {
                body: TxBody::new(dst, len, tag),
                unacked: BTreeSet::new(),
                acked_bytes: 0,
                last_progress: ns(now),
            },
        );
        act.kick_tx();
    }

    fn delivered_bytes(&self) -> u64 {
        self.rx.delivered_bytes()
    }
}

/// Fabric configuration matching the pFabric paper: small per-port
/// buffers with priority dropping on every switch port.
pub fn fabric_queues(cfg: &PfabricConfig) -> homa_sim::QueueDiscipline {
    homa_sim::QueueDiscipline {
        kind: homa_sim::QueueKind::Pfabric,
        cap_bytes: cfg.queue_cap_bytes,
        ecn: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homa_sim::{AppEvent, Network, NetworkConfig, Topology};

    fn net(n: u32) -> Network<PfabricMeta, PfabricTransport> {
        let cfg = PfabricConfig::default();
        let netcfg = NetworkConfig::uniform(1, fabric_queues(&cfg));
        Network::new(Topology::single_switch(n), netcfg, move |h| {
            PfabricTransport::new(h, PfabricConfig::default())
        })
    }

    #[test]
    fn single_message_delivers() {
        let mut net = net(4);
        net.inject_message(HostId(0), HostId(1), 50_000, 3);
        net.run_until(SimTime::from_millis(5));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 1);
        assert!(matches!(evs[0].2, AppEvent::MessageDelivered { len: 50_000, tag: 3, .. }));
    }

    #[test]
    fn zero_length_message_delivers() {
        let mut net = net(4);
        net.inject_message(HostId(0), HostId(1), 0, 11);
        net.run_until(SimTime::from_millis(1));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 1, "empty message announces itself with one packet");
        assert!(matches!(evs[0].2, AppEvent::MessageDelivered { len: 0, tag: 11, .. }));
    }

    #[test]
    fn short_message_preempts_long_in_fabric() {
        let mut net = net(4);
        // Saturate the downlink with a huge transfer, then inject a tiny
        // message: priority dropping + smallest-remaining dequeue should
        // deliver it almost immediately.
        net.inject_message(HostId(0), HostId(2), 5_000_000, 1);
        net.run_until(SimTime::from_micros(200));
        net.inject_message(HostId(1), HostId(2), 200, 2);
        net.run_until(SimTime::from_millis(20));
        let evs = net.take_app_events();
        let tiny = evs
            .iter()
            .find(|(_, _, e)| matches!(e, AppEvent::MessageDelivered { tag: 2, .. }))
            .expect("tiny delivered");
        let delay_us = tiny.0.as_micros_f64() - 200.0;
        assert!(delay_us < 30.0, "tiny message took {delay_us}us under load");
    }

    #[test]
    fn drops_recovered_by_timeout() {
        let mut net = net(6);
        // Five senders converge on one receiver; the tiny pFabric buffers
        // will drop from the largest flows, which must recover.
        for s in 0..5u32 {
            net.inject_message(HostId(s), HostId(5), 100_000, s as u64);
        }
        net.run_until(SimTime::from_millis(50));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 5, "all messages complete despite drops");
        let stats = net.harvest_stats();
        assert!(stats.total_drops() > 0, "priority dropping must have occurred");
    }

    #[test]
    fn srpt_finishes_short_flows_first_under_contention() {
        let mut net = net(4);
        net.inject_message(HostId(0), HostId(3), 1_000_000, 1);
        net.inject_message(HostId(1), HostId(3), 30_000, 2);
        net.run_until(SimTime::from_millis(30));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 2);
        assert!(
            matches!(evs[0].2, AppEvent::MessageDelivered { tag: 2, .. }),
            "short flow completes first under SRPT"
        );
    }
}
