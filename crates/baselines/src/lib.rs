//! # homa-baselines — transports on the simulated fabric
//!
//! This crate binds protocol state machines to the `homa-sim` fabric:
//!
//! * [`homa_sim`] — the adapter that runs the real [`homa`] protocol core
//!   ([`homa::HomaEndpoint`]) as a simulator [`Transport`]. The paper's
//!   `HomaPx` variants (restricted priority counts) and the RAMCloud
//!   *Basic* transport (receiver-driven grants, no priorities, unlimited
//!   overcommitment) are configuration presets of the same adapter.
//! * [`stream`] — a TCP-like single-FIFO-per-destination byte stream, the
//!   head-of-line-blocking comparison of Figure 8.
//! * [`phost`] — pHost (Gao et al., CoNEXT 2015): receiver token
//!   scheduling, free tokens for the first RTTbytes, two static
//!   priorities, sender downgrade timeouts, no overcommitment.
//! * [`pias`] — PIAS (Bai et al., NSDI 2015): sender-side multi-level
//!   feedback queue priorities with workload-tuned demotion thresholds
//!   over a DCTCP-style ECN windowed transport.
//! * [`pfabric`] — pFabric (Alizadeh et al., SIGCOMM 2013):
//!   remaining-size packet priorities with drop-largest/dequeue-smallest
//!   switches, line-rate senders with BDP windows and timeout
//!   retransmission.
//! * [`ndp`] — NDP (Handley et al., SIGCOMM 2017): packet trimming,
//!   receiver-paced pull queue with fair-share (round-robin) scheduling,
//!   no overcommitment.
//!
//! Every transport implements the simulator's [`Transport`] trait over
//! its own packet metadata and reports deliveries through
//! [`AppEvent`](homa_sim_crate::AppEvent)s, so the experiment harness can
//! drive any of them interchangeably.
//!
//! ## Paper map
//!
//! | module | paper section |
//! |---|---|
//! | [`homa_sim`] | §5.2's Homa simulation (and §5.1's HomaPx / Basic variants of Figures 8/9) |
//! | [`stream`] | §5.1's TCP head-of-line-blocking comparison |
//! | [`pfabric`] / [`phost`] / [`pias`] / [`ndp`] | §5.2's comparison transports (Figures 12–15) |
//! | [`common`] | shared scaffolding (flow tables, reassembly, timers) — engineering, not paper |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

// Renamed import so the module named `homa_sim` below doesn't collide
// with the `homa-sim` crate (the leading `::` forces the extern crate).
use ::homa_sim as homa_sim_crate;
pub use homa_sim_crate::transport::Transport;

pub mod common;
pub mod homa_sim;
pub mod ndp;
pub mod pfabric;
pub mod phost;
pub mod pias;
pub mod stream;

pub use homa_sim::{HomaMeta, HomaSimTransport};
pub use ndp::{NdpConfig, NdpMeta, NdpTransport};
pub use pfabric::{PfabricConfig, PfabricMeta, PfabricTransport};
pub use phost::{PhostConfig, PhostMeta, PhostTransport};
pub use pias::{PiasConfig, PiasMeta, PiasTransport};
pub use stream::{StreamConfig, StreamMeta, StreamTransport};
