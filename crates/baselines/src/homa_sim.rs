//! The Homa protocol core as a simulator transport.
//!
//! [`HomaSimTransport`] is a thin shell: it converts between simulator
//! types ([`HostId`], [`SimTime`], [`Packet`]) and protocol-core types
//! ([`PeerId`], nanoseconds, [`HomaPacket`]), drives the endpoint's
//! periodic timer, and surfaces protocol events as simulator
//! [`AppEvent`]s.
//!
//! The paper's comparison variants are presets of this adapter:
//!
//! * `HomaPx` (Figures 8–9): [`homa_px_config`] restricts the number of
//!   priority levels.
//! * *Basic* (RAMCloud's receiver-driven transport without priorities or
//!   overcommitment limits): [`basic_config`].

use crate::common::ns;
use homa::packets::{HomaPacket, PeerId};
use homa::{HomaConfig, HomaEndpoint, HomaEvent, PriorityMap, TrafficTracker};
use homa_sim::{
    AppEvent, CtrlKind, HostId, Packet, PacketMeta, SimDuration, SimTime, TimerToken, Transport,
    TransportActions,
};
use homa_workloads::MessageSizeDist;

/// Simulator packet metadata for Homa: the protocol packet plus cached
/// wire sizing.
#[derive(Debug, Clone)]
pub struct HomaMeta {
    /// The protocol-level packet.
    pub pkt: HomaPacket,
    data_overhead: u32,
    ctrl_bytes: u32,
    top_prio: u8,
}

impl PacketMeta for HomaMeta {
    fn wire_bytes(&self) -> u32 {
        match &self.pkt {
            HomaPacket::Data(h) => h.payload + self.data_overhead,
            _ => self.ctrl_bytes,
        }
    }

    fn priority(&self) -> u8 {
        match &self.pkt {
            HomaPacket::Data(h) => h.prio,
            // "All packet types except DATA are sent at highest priority"
            // (Figure 3).
            _ => self.top_prio,
        }
    }

    fn is_control(&self) -> bool {
        self.pkt.is_control()
    }

    fn goodput_bytes(&self) -> u32 {
        match &self.pkt {
            HomaPacket::Data(h) if !h.retransmit => h.payload,
            _ => 0,
        }
    }

    fn ctrl_kind(&self) -> Option<CtrlKind> {
        match &self.pkt {
            HomaPacket::Grant(g) => Some(CtrlKind::Grant { offset: g.offset, prio: g.prio }),
            HomaPacket::Resend(r) => Some(CtrlKind::Resend { offset: r.offset, len: r.length }),
            _ => None,
        }
    }
}

/// Periodic housekeeping cadence for the endpoint (loss sweeps).
const TICK: SimDuration = SimDuration::from_micros(250);
const TICK_TOKEN: TimerToken = TimerToken(1);

/// [`homa::HomaEndpoint`] adapted to the simulator's [`Transport`] trait.
pub struct HomaSimTransport {
    me: HostId,
    ep: HomaEndpoint,
    tick_armed: bool,
    /// When true, per-message queueing-delay attribution is accumulated
    /// for the Figure 14 analysis (keyed by sender and tag).
    track_delay: bool,
    delay_acc: std::collections::HashMap<(HostId, u64), homa_sim::DelayBreakdown>,
}

impl HomaSimTransport {
    /// New transport for host `me`.
    pub fn new(me: HostId, cfg: HomaConfig) -> Self {
        HomaSimTransport {
            me,
            ep: HomaEndpoint::new(PeerId(me.0), cfg),
            tick_armed: false,
            track_delay: false,
            delay_acc: Default::default(),
        }
    }

    /// Enable per-message delay attribution (Figure 14).
    pub fn with_delay_tracking(mut self) -> Self {
        self.track_delay = true;
        self
    }

    /// Install a precomputed priority map (the paper's §4 setup: cutoffs
    /// derived from workload knowledge).
    pub fn with_static_map(mut self, map: PriorityMap) -> Self {
        self.ep.set_static_priority_map(map);
        self
    }

    /// Access the underlying endpoint (instrumentation).
    pub fn endpoint(&self) -> &HomaEndpoint {
        &self.ep
    }

    fn arm_tick(&mut self, now: SimTime, act: &mut TransportActions) {
        if !self.tick_armed {
            self.tick_armed = true;
            act.timer(now + TICK, TICK_TOKEN);
        }
    }

    fn drain_events(&mut self, act: &mut TransportActions) {
        for ev in self.ep.take_events() {
            match ev {
                HomaEvent::MessageDelivered { src, len, tag, .. } => {
                    act.event(AppEvent::MessageDelivered { src: HostId(src.0), tag, len });
                }
                HomaEvent::RequestArrived { client, rpc_seq, len, tag } => {
                    act.event(AppEvent::RpcRequestArrived {
                        client: HostId(client.0),
                        rpc: rpc_seq,
                        request_len: len,
                    });
                    let _ = tag;
                }
                HomaEvent::RpcCompleted { server, tag, resp_len, .. } => {
                    act.event(AppEvent::RpcCompleted {
                        server: HostId(server.0),
                        tag,
                        response_len: resp_len,
                    });
                }
                HomaEvent::RpcAborted { server, tag } => {
                    act.event(AppEvent::Aborted { peer: HostId(server.0), tag });
                }
                HomaEvent::InboundAborted { src, .. } => {
                    act.event(AppEvent::Aborted { peer: HostId(src.0), tag: u64::MAX });
                }
                HomaEvent::OutboundAborted { dst, tag } => {
                    act.event(AppEvent::Aborted { peer: HostId(dst.0), tag });
                }
            }
        }
    }

    fn wrap(&self, dst: PeerId, pkt: HomaPacket) -> Packet<HomaMeta> {
        let cfg = self.ep.config();
        Packet::new(
            self.me,
            HostId(dst.0),
            HomaMeta {
                pkt,
                data_overhead: cfg.data_overhead,
                ctrl_bytes: cfg.ctrl_bytes,
                top_prio: cfg.num_priorities - 1,
            },
        )
    }
}

impl Transport<HomaMeta> for HomaSimTransport {
    fn on_packet(&mut self, now: SimTime, pkt: Packet<HomaMeta>, act: &mut TransportActions) {
        self.arm_tick(now, act);
        if self.track_delay {
            if let HomaPacket::Data(h) = &pkt.meta.pkt {
                self.delay_acc.entry((pkt.src, h.tag)).or_default().merge(&pkt.delay);
            }
        }
        self.ep.on_packet(ns(now), PeerId(pkt.src.0), pkt.meta.pkt);
        self.drain_events(act);
        if self.ep.has_pending_tx() {
            act.kick_tx();
        }
    }

    fn on_timer(&mut self, now: SimTime, token: TimerToken, act: &mut TransportActions) {
        debug_assert_eq!(token, TICK_TOKEN);
        self.ep.timer_tick(ns(now));
        act.timer(now + TICK, TICK_TOKEN);
        self.drain_events(act);
        if self.ep.has_pending_tx() {
            act.kick_tx();
        }
    }

    fn next_packet(&mut self, now: SimTime) -> Option<Packet<HomaMeta>> {
        self.ep.poll_transmit(ns(now)).map(|(dst, pkt)| self.wrap(dst, pkt))
    }

    fn inject_message(
        &mut self,
        now: SimTime,
        dst: HostId,
        len: u64,
        tag: u64,
        act: &mut TransportActions,
    ) {
        self.arm_tick(now, act);
        self.ep.send_message(ns(now), PeerId(dst.0), len, tag);
        act.kick_tx();
    }

    fn inject_rpc(
        &mut self,
        now: SimTime,
        server: HostId,
        req_len: u64,
        tag: u64,
        act: &mut TransportActions,
    ) {
        self.arm_tick(now, act);
        self.ep.begin_rpc(ns(now), PeerId(server.0), req_len, tag);
        act.kick_tx();
    }

    fn inject_response(
        &mut self,
        now: SimTime,
        client: HostId,
        rpc: u64,
        resp_len: u64,
        act: &mut TransportActions,
    ) {
        self.arm_tick(now, act);
        self.ep.send_response(ns(now), PeerId(client.0), rpc, resp_len, rpc);
        act.kick_tx();
    }

    fn withholding_grants(&self, _now: SimTime) -> bool {
        self.ep.withholding_grants()
    }

    fn delivered_bytes(&self) -> u64 {
        self.ep.delivered_bytes()
    }

    fn take_message_delay(&mut self, src: HostId, tag: u64) -> homa_sim::DelayBreakdown {
        self.delay_acc.remove(&(src, tag)).unwrap_or_default()
    }

    fn grant_stats(&self) -> homa_sim::GrantStats {
        homa_sim::GrantStats {
            grants_issued: self.ep.grants_issued(),
            granted_bytes: self.ep.granted_bytes(),
            resends_requested: self.ep.resends_sent(),
        }
    }
}

/// The paper's `HomaPx` variants: Homa restricted to `levels` priority
/// levels (Figures 8–9).
pub fn homa_px_config(levels: u8) -> HomaConfig {
    HomaConfig { num_priorities: levels, ..HomaConfig::default() }
}

/// RAMCloud's *Basic* transport: "similar to Homa in that it is
/// receiver-driven, with grants and unscheduled packets. However, Basic
/// does not use priorities and it has no limit on overcommitment:
/// receivers grant independently to all incoming messages" (§5.1).
pub fn basic_config() -> HomaConfig {
    HomaConfig { num_priorities: 1, overcommit_override: Some(u8::MAX), ..HomaConfig::default() }
}

/// Build the workload-derived static priority map the paper's
/// implementation precomputes (§4): measure the message-size distribution
/// and run the Figure 4 algorithm once.
pub fn static_map_for_workload(dist: &MessageSizeDist, cfg: &HomaConfig) -> PriorityMap {
    let mut tracker = TrafficTracker::new();
    let n = 20_000;
    for i in 0..n {
        let p = (i as f64 + 0.5) / n as f64;
        tracker.record(dist.quantile(p), cfg.unsched_limit);
    }
    tracker.recompute(cfg, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use homa_sim::{Network, NetworkConfig, Topology};
    use homa_workloads::Workload;

    fn homa_net(n: u32) -> Network<HomaMeta, HomaSimTransport> {
        let topo = Topology::single_switch(n);
        Network::new(topo, NetworkConfig::default(), |h| {
            HomaSimTransport::new(h, HomaConfig::default())
        })
    }

    #[test]
    fn small_message_one_way_latency_is_near_hardware() {
        let mut net = homa_net(4);
        net.inject_message(HostId(0), HostId(1), 100, 1);
        net.run_until(SimTime::from_millis(1));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 1);
        let (at, host, ev) = &evs[0];
        assert_eq!(*host, HostId(1));
        assert!(matches!(ev, AppEvent::MessageDelivered { len: 100, tag: 1, .. }));
        // Single switch: ~128+128ns links + 250ns switch + 1.5us software.
        let us = at.as_micros_f64();
        assert!(us < 2.5, "unloaded small message took {us}us");
    }

    #[test]
    fn large_message_completes_at_line_rate() {
        let mut net = homa_net(4);
        let len = 10_000_000u64;
        net.inject_message(HostId(0), HostId(1), len, 7);
        net.run_until(SimTime::from_millis(30));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 1, "10MB message must complete");
        let at = evs[0].0.as_secs_f64();
        // Pure serialization of 10MB + headers at 10 Gbps is ~8.34ms;
        // grants should keep the pipe full, so within 12%.
        let pure = len as f64 * 8.0 / 10e9 * (1460.0 / 1400.0);
        assert!((at - pure).abs() / pure < 0.12, "completion {at}s vs line-rate {pure}s");
    }

    #[test]
    fn rpc_echo_round_trip() {
        let mut net = homa_net(4);
        net.inject_rpc(HostId(0), HostId(1), 100, 42);
        // Drive; server echoes via the driver when the request arrives.
        let mut done = false;
        for _ in 0..100 {
            net.run_next_before(SimTime::from_millis(5));
            for (_, host, ev) in net.take_app_events() {
                match ev {
                    AppEvent::RpcRequestArrived { client, rpc, request_len } => {
                        net.inject_response(host, client, rpc, request_len);
                    }
                    AppEvent::RpcCompleted { tag: 42, response_len: 100, .. } => done = true,
                    other => panic!("unexpected event {other:?}"),
                }
            }
            if done {
                break;
            }
        }
        assert!(done, "rpc completed");
        // Paper: 100-byte echo RPC takes 4.7us unloaded on 10G — ours has
        // comparable structure (two crossings + two software delays).
        assert!(net.now().as_micros_f64() < 5_000.0);
    }

    #[test]
    fn concurrent_senders_all_deliver() {
        let mut net = homa_net(8);
        let mut expected = 0u64;
        for i in 0..30u64 {
            let src = HostId((i % 7) as u32);
            net.inject_message(src, HostId(7), 5_000 + i * 331, i);
            expected += 5_000 + i * 331;
        }
        net.run_until(SimTime::from_millis(20));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 30);
        assert_eq!(net.transport(HostId(7)).delivered_bytes(), expected);
        let stats = net.harvest_stats();
        assert_eq!(stats.total_drops(), 0, "no drops with Homa's buffering");
    }

    #[test]
    fn static_map_matches_workload_character() {
        let cfg = HomaConfig::default();
        let m1 = static_map_for_workload(&Workload::W1.dist(), &cfg);
        assert_eq!(m1.unsched_levels, 7, "W1 is almost fully unscheduled");
        let m4 = static_map_for_workload(&Workload::W4.dist(), &cfg);
        assert_eq!(m4.unsched_levels, 1, "W4 is almost fully scheduled");
        let m3 = static_map_for_workload(&Workload::W3.dist(), &cfg);
        assert_eq!(m3.unsched_levels, 4, "W3 splits evenly (Figure 21)");
    }

    #[test]
    fn basic_config_is_p1_unlimited() {
        let cfg = basic_config();
        assert_eq!(cfg.num_priorities, 1);
        assert_eq!(cfg.overcommit_override, Some(u8::MAX));
        // And it still delivers traffic.
        let topo = Topology::single_switch(4);
        let mut net: Network<HomaMeta, HomaSimTransport> =
            Network::new(topo, NetworkConfig::default(), |h| {
                HomaSimTransport::new(h, basic_config())
            });
        net.inject_message(HostId(0), HostId(1), 50_000, 1);
        net.inject_message(HostId(2), HostId(1), 50_000, 2);
        net.run_until(SimTime::from_millis(5));
        assert_eq!(net.take_app_events().len(), 2);
    }

    #[test]
    fn engines_agree_under_loss() {
        // The lane-aware engine must replay the legacy heap bit-for-bit
        // even through the loss-recovery path (RESENDs, retransmissions),
        // where event ordering is at its most delicate.
        use homa_sim::{EngineKind, QueueDiscipline, QueueKind};
        let run = |engine: EngineKind| {
            let cfg = NetworkConfig {
                tor_down: QueueDiscipline {
                    kind: QueueKind::StrictPriority { levels: 8 },
                    cap_bytes: 4_500,
                    ecn: None,
                },
                ..NetworkConfig::default()
            }
            .with_engine(engine);
            let topo = Topology::multi_tor(16);
            let mut net: Network<HomaMeta, HomaSimTransport> =
                Network::new(topo, cfg, |h| HomaSimTransport::new(h, HomaConfig::default()));
            for s in 0..10u32 {
                net.inject_message(HostId(s), HostId(15), 30_000, s as u64);
            }
            net.run_until(SimTime::from_millis(50));
            let evs: Vec<_> = net
                .take_app_events()
                .into_iter()
                .map(|(t, h, e)| (t.as_nanos(), h.0, format!("{e:?}")))
                .collect();
            (evs, net.events_processed(), net.harvest_stats().total_drops())
        };
        let hier = run(EngineKind::Hierarchical);
        let legacy = run(EngineKind::LegacyHeap);
        assert!(hier.2 > 0, "test must actually drop packets");
        assert_eq!(hier, legacy);
    }

    #[test]
    fn loss_recovery_inside_fabric() {
        // Force drops by shrinking the TOR downlink buffer drastically.
        use homa_sim::{QueueDiscipline, QueueKind};
        let cfg = NetworkConfig {
            tor_down: QueueDiscipline {
                kind: QueueKind::StrictPriority { levels: 8 },
                cap_bytes: 4_500, // 3 packets
                ecn: None,
            },
            ..NetworkConfig::default()
        };
        let topo = Topology::single_switch(6);
        let mut net: Network<HomaMeta, HomaSimTransport> =
            Network::new(topo, cfg, |h| HomaSimTransport::new(h, HomaConfig::default()));
        // Five senders blast one receiver simultaneously: unscheduled
        // collisions overflow the tiny buffer.
        for s in 0..5u32 {
            net.inject_message(HostId(s), HostId(5), 30_000, s as u64);
        }
        net.run_until(SimTime::from_millis(50));
        let evs = net.take_app_events();
        let stats = net.harvest_stats();
        assert!(stats.total_drops() > 0, "test must actually drop packets");
        assert_eq!(evs.len(), 5, "all messages recovered via RESEND");
    }
}
