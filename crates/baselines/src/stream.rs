//! A TCP-like byte-stream transport: one FIFO stream per destination.
//!
//! This is the comparison transport for the paper's streaming argument
//! (§3.1, Figure 8's TCP/InfRC curves): applications typically use a
//! single stream per destination, so a short message queued behind a long
//! one suffers head-of-line blocking — the paper measures a ~100x tail
//! latency penalty. The model here:
//!
//! * messages to the same destination are serialized FIFO into one stream;
//! * a fixed window (one bandwidth-delay product by default) of unacked
//!   bytes, cumulative acks, go-back-N on timeout;
//! * no network priorities (everything at level 0);
//! * fair round-robin between streams at the sender.
//!
//! Streams reuse the sender-side scaffolding from
//! [`crate::common`] ([`FlowTable`]/[`TxBody`], keyed by destination
//! host rather than flow); reassembly is byte-stream-specific (in-order
//! delivery with message boundaries), so it stays local.

use crate::common::{
    ns, CtrlQueue, FlowTable, TickTimer, TxBody, CTRL_BYTES, DATA_OVERHEAD, RTT_BYTES,
};
use homa_sim::{
    AppEvent, HostId, Packet, PacketMeta, SimDuration, SimTime, TimerToken, Transport,
    TransportActions,
};
use std::collections::{HashMap, VecDeque};

/// Stream transport configuration.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Maximum unacked bytes per stream (default: one BDP).
    pub window: u64,
    /// Retransmission timeout (go-back-N restart) in nanoseconds.
    pub rto_ns: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig { window: RTT_BYTES, rto_ns: 1_000_000 }
    }
}

/// Packet metadata for the stream transport.
#[derive(Debug, Clone)]
pub enum StreamMeta {
    /// A data segment within the per-destination stream.
    Data {
        /// Offset of this segment within the byte stream.
        offset: u64,
        /// Payload bytes carried.
        payload: u32,
        /// Message boundaries starting within this segment, as
        /// `(tag, len, start_offset)` (receiver-side delivery
        /// bookkeeping).
        msgs: Vec<(u64, u64, u64)>,
    },
    /// Cumulative acknowledgment of stream bytes below `offset`.
    Ack {
        /// All bytes below this stream offset have been received.
        offset: u64,
    },
}

impl PacketMeta for StreamMeta {
    fn wire_bytes(&self) -> u32 {
        match self {
            StreamMeta::Data { payload, .. } => payload + DATA_OVERHEAD,
            StreamMeta::Ack { .. } => CTRL_BYTES,
        }
    }
    fn priority(&self) -> u8 {
        0
    }
    fn is_control(&self) -> bool {
        matches!(self, StreamMeta::Ack { .. })
    }
    fn goodput_bytes(&self) -> u32 {
        match self {
            StreamMeta::Data { payload, .. } => *payload,
            _ => 0,
        }
    }
}

/// One direction of a stream (sender side): the shared fragmentation
/// body (`len` = bytes enqueued so far, `fresh` = next byte to send)
/// plus cumulative-ack bookkeeping.
#[derive(Debug)]
struct TxStream {
    body: TxBody,
    /// Cumulative ack received.
    acked: u64,
    /// Message boundaries: (tag, len, start_offset), FIFO.
    msgs: VecDeque<(u64, u64, u64)>,
    /// Last time the ack point advanced (for RTO).
    last_progress: u64,
}

/// Receiver side of a stream.
#[derive(Debug, Default)]
struct RxStream {
    /// In-order bytes received.
    in_order: u64,
    /// Out-of-order segments (offset, len) awaiting the gap to fill.
    ooo: Vec<(u64, u64)>,
    /// Known message boundaries: (tag, len, start_offset).
    msgs: VecDeque<(u64, u64, u64)>,
}

const RTO_TOKEN: TimerToken = TimerToken(2);
const RTO_TICK: SimDuration = SimDuration::from_micros(500);

/// The stream transport instance for one host.
pub struct StreamTransport {
    me: HostId,
    cfg: StreamConfig,
    tx: FlowTable<HostId, TxStream>,
    rx: HashMap<HostId, RxStream>,
    acks: CtrlQueue<StreamMeta>,
    delivered: u64,
    rto: TickTimer,
}

impl StreamTransport {
    /// New stream transport for host `me`.
    pub fn new(me: HostId, cfg: StreamConfig) -> Self {
        StreamTransport {
            me,
            cfg,
            tx: FlowTable::new(),
            rx: HashMap::new(),
            acks: CtrlQueue::new(),
            delivered: 0,
            rto: TickTimer::new(RTO_TOKEN, RTO_TICK),
        }
    }

    fn deliver_in_order(&mut self, src: HostId, act: &mut TransportActions) {
        let rx = self.rx.get_mut(&src).expect("stream exists");
        // Merge out-of-order segments into the in-order point.
        loop {
            let mut advanced = false;
            let mut i = 0;
            while i < rx.ooo.len() {
                let (o, l) = rx.ooo[i];
                if o <= rx.in_order {
                    rx.in_order = rx.in_order.max(o + l);
                    rx.ooo.swap_remove(i);
                    advanced = true;
                } else {
                    i += 1;
                }
            }
            if !advanced {
                break;
            }
        }
        // Emit every message fully below the in-order point.
        while let Some(&(tag, len, start)) = rx.msgs.front() {
            if start + len <= rx.in_order {
                rx.msgs.pop_front();
                self.delivered += len;
                act.event(AppEvent::MessageDelivered { src, tag, len });
            } else {
                break;
            }
        }
    }
}

impl Transport<StreamMeta> for StreamTransport {
    fn on_packet(&mut self, now: SimTime, pkt: Packet<StreamMeta>, act: &mut TransportActions) {
        self.rto.ensure(now, act);
        match pkt.meta {
            StreamMeta::Data { offset, payload, ref msgs } => {
                let rx = self.rx.entry(pkt.src).or_default();
                for &m in msgs {
                    // Register unseen message boundaries in order.
                    if rx.msgs.iter().all(|&(_, _, s)| s != m.2) && m.2 + m.1 > rx.in_order {
                        rx.msgs.push_back(m);
                    }
                }
                if offset + payload as u64 > rx.in_order {
                    rx.ooo.push((offset, payload as u64));
                }
                self.deliver_in_order(pkt.src, act);
                let in_order = self.rx[&pkt.src].in_order;
                self.acks.push(pkt.src, StreamMeta::Ack { offset: in_order });
                act.kick_tx();
            }
            StreamMeta::Ack { offset } => {
                if let Some(tx) = self.tx.get_mut(pkt.src) {
                    if offset > tx.acked {
                        tx.acked = offset;
                        tx.last_progress = ns(now);
                        // Completed messages can be forgotten.
                        while let Some(&(_, len, start)) = tx.msgs.front() {
                            if start + len <= tx.acked {
                                tx.msgs.pop_front();
                            } else {
                                break;
                            }
                        }
                    }
                }
                act.kick_tx();
            }
        }
    }

    fn on_timer(&mut self, now: SimTime, _token: TimerToken, act: &mut TransportActions) {
        // Go-back-N: any stream stalled past the RTO restarts from the ack
        // point.
        let mut kick = false;
        let rto_ns = self.cfg.rto_ns;
        for tx in self.tx.values_mut() {
            if tx.acked < tx.body.fresh && ns(now).saturating_sub(tx.last_progress) > rto_ns {
                tx.body.fresh = tx.acked;
                tx.last_progress = ns(now);
                kick = true;
            }
        }
        if kick {
            act.kick_tx();
        }
        self.rto.rearm(now, act);
    }

    fn next_packet(&mut self, _now: SimTime) -> Option<Packet<StreamMeta>> {
        // Acks first.
        if let Some(pkt) = self.acks.pop_packet(self.me) {
            return Some(pkt);
        }
        // Round-robin across streams with window space and data.
        let window = self.cfg.window;
        let dst = self.tx.select_rr(|_, tx| tx.body.has_work(tx.acked + window))?;
        let tx = self.tx.get_mut(dst).expect("selected");
        let (offset, payload, _) = tx.body.next_chunk(tx.acked + window).expect("eligible");
        // Message boundaries that start within this segment.
        let msgs: Vec<(u64, u64, u64)> = tx
            .msgs
            .iter()
            .filter(|&&(_, _, s)| s >= offset && s < offset + payload as u64)
            .copied()
            .collect();
        Some(Packet::new(self.me, dst, StreamMeta::Data { offset, payload, msgs }))
    }

    fn inject_message(
        &mut self,
        now: SimTime,
        dst: HostId,
        len: u64,
        tag: u64,
        act: &mut TransportActions,
    ) {
        self.rto.ensure(now, act);
        if !self.tx.contains(dst) {
            self.tx.insert(
                dst,
                TxStream {
                    body: TxBody::new(dst, 0, 0),
                    acked: 0,
                    msgs: VecDeque::new(),
                    last_progress: 0,
                },
            );
        }
        let tx = self.tx.get_mut(dst).expect("just ensured");
        let start = tx.body.len;
        tx.msgs.push_back((tag, len, start));
        tx.body.len += len;
        if tx.last_progress == 0 {
            tx.last_progress = ns(now);
        }
        act.kick_tx();
    }

    fn delivered_bytes(&self) -> u64 {
        self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homa_sim::{Network, NetworkConfig, Topology};

    fn net(n: u32) -> Network<StreamMeta, StreamTransport> {
        Network::new(Topology::single_switch(n), NetworkConfig::default(), |h| {
            StreamTransport::new(h, StreamConfig::default())
        })
    }

    #[test]
    fn single_message_delivery() {
        let mut net = net(4);
        net.inject_message(HostId(0), HostId(1), 10_000, 5);
        net.run_until(SimTime::from_millis(5));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 1);
        assert!(matches!(evs[0].2, AppEvent::MessageDelivered { len: 10_000, tag: 5, .. }));
    }

    #[test]
    fn fifo_head_of_line_blocking() {
        // A short message behind a long one on the same stream must wait:
        // this is the pathology Homa's message orientation removes.
        let mut net = net(4);
        net.inject_message(HostId(0), HostId(1), 2_000_000, 1);
        net.inject_message(HostId(0), HostId(1), 100, 2);
        net.run_until(SimTime::from_millis(50));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 2);
        // Big message delivered first despite the tiny one being "urgent".
        assert!(matches!(evs[0].2, AppEvent::MessageDelivered { tag: 1, .. }));
        assert!(matches!(evs[1].2, AppEvent::MessageDelivered { tag: 2, .. }));
        // The tiny message's delivery time is dominated by the big one:
        // ~1.7ms of serialization, vs ~2us if it went first.
        assert!(evs[1].0.as_micros_f64() > 1_000.0);
    }

    #[test]
    fn separate_destinations_do_not_block() {
        let mut net = net(4);
        net.inject_message(HostId(0), HostId(1), 2_000_000, 1);
        net.inject_message(HostId(0), HostId(2), 100, 2);
        net.run_until(SimTime::from_millis(50));
        let evs = net.take_app_events();
        // The tiny message to a different host is only slowed by its share
        // of the sender uplink, far less than full serialization of 2MB.
        let tiny = evs
            .iter()
            .find(|(_, _, e)| matches!(e, AppEvent::MessageDelivered { tag: 2, .. }))
            .unwrap();
        assert!(tiny.0.as_micros_f64() < 1_500.0, "tiny at {}us", tiny.0.as_micros_f64());
    }

    #[test]
    fn window_paces_long_transfers() {
        let mut net = net(4);
        net.inject_message(HostId(0), HostId(1), 500_000, 9);
        net.run_until(SimTime::from_millis(20));
        let evs = net.take_app_events();
        assert_eq!(evs.len(), 1, "long transfer completes under windowed acks");
    }

    #[test]
    fn many_messages_fifo_order() {
        let mut net = net(4);
        for i in 0..20 {
            net.inject_message(HostId(0), HostId(1), 1_000, i);
        }
        net.run_until(SimTime::from_millis(20));
        let evs = net.take_app_events();
        let tags: Vec<u64> = evs
            .iter()
            .filter_map(|(_, _, e)| match e {
                AppEvent::MessageDelivered { tag, .. } => Some(*tag),
                _ => None,
            })
            .collect();
        assert_eq!(tags, (0..20).collect::<Vec<_>>(), "streams deliver FIFO");
    }
}
