//! Umbrella crate for the Homa reproduction workspace.
//!
//! This crate exists to host the runnable examples in `examples/` and the
//! cross-crate integration tests in `tests/`. All functionality lives in the
//! member crates, re-exported here for convenience:
//!
//! * [`homa`] — the Homa protocol core (the paper's contribution).
//! * [`homa_sim`] — the packet-level discrete-event network simulator.
//! * [`homa_wire`] — binary wire formats for real-network use.
//! * [`homa_workloads`] — W1–W5 workload generators.
//! * [`homa_baselines`] — pFabric/pHost/PIAS/NDP/Basic/Stream baselines.
//! * [`homa_harness`] — experiment drivers for every paper figure/table.
//! * [`homa_udp`] — a real-host UDP transport built on the protocol core.

pub use homa;
pub use homa_baselines;
pub use homa_harness;
pub use homa_sim;
pub use homa_udp;
pub use homa_wire;
pub use homa_workloads;
