//! Homa over real UDP sockets: an echo client/server on localhost.
//!
//! The same protocol core that runs packet-accurately in the simulator
//! drives real `std::net::UdpSocket`s here, with the `homa-wire` binary
//! encoding on the wire — grants, SRPT, RESEND recovery and all.
//!
//! ```sh
//! cargo run --release --example udp_echo
//! ```

use homa::packets::PeerId;
use homa_udp::{HomaUdpNode, UdpConfig, UdpEvent};
use std::time::{Duration, Instant};

fn main() {
    let server =
        HomaUdpNode::bind(PeerId(1), "127.0.0.1:0", UdpConfig::default()).expect("bind server");
    let client =
        HomaUdpNode::bind(PeerId(0), "127.0.0.1:0", UdpConfig::default()).expect("bind client");
    client.add_peer(PeerId(1), server.local_addr().expect("addr"));
    server.add_peer(PeerId(0), client.local_addr().expect("addr"));

    // Server thread: echo every request.
    let server2 = server.clone();
    let server_thread = std::thread::spawn(move || {
        let mut served = 0;
        while served < 4 {
            match server2.events().recv_timeout(Duration::from_secs(10)) {
                Ok(UdpEvent::Request { from, rpc, data }) => {
                    server2.respond(from, rpc, data).expect("respond");
                    served += 1;
                }
                Ok(other) => panic!("unexpected event {other:?}"),
                Err(e) => panic!("server timed out: {e}"),
            }
        }
    });

    println!("{:>12} {:>14}", "size (B)", "RTT (us)");
    for (i, size) in [64usize, 4_000, 60_000, 400_000].into_iter().enumerate() {
        let payload: Vec<u8> = (0..size).map(|j| (j % 251) as u8).collect();
        let start = Instant::now();
        client.call(PeerId(1), payload.clone(), i as u64).expect("call");
        match client.events().recv_timeout(Duration::from_secs(10)) {
            Ok(UdpEvent::Response { data, .. }) => {
                assert_eq!(data, payload, "echo payload must round-trip intact");
                println!("{size:>12} {:>14.1}", start.elapsed().as_secs_f64() * 1e6);
            }
            Ok(other) => panic!("unexpected event {other:?}"),
            Err(e) => panic!("client timed out: {e}"),
        }
    }
    server_thread.join().expect("server thread");
    client.shutdown();
    server.shutdown();
    println!("\n4 RPCs echoed over real UDP sockets with the Homa wire format.");
}
