//! Scenario-diversity demo: a 20-wide incast with a flapping victim
//! downlink and a receiver pause, run identically across the six
//! byte-conserving transports, with an innocent-bystander victim flow
//! measured separately.
//!
//! ```text
//! cargo run --release --example scenario_faults
//! ```
//!
//! This is the runnable form of the `TrafficSpec`/`FaultSpec` example in
//! the README, and the source of the incast/flap slowdown table in
//! EXPERIMENTS.md.

use homa_bench::{run_protocol_scenario, Protocol};
use homa_harness::driver::OnewayOpts;
use homa_harness::{FabricSpec, ScenarioSpec, SlowdownSummary};
use homa_sim::{FaultPlan, HostId, LinkId};
use homa_workloads::{TrafficSpec, VictimSpec, Workload};

fn main() {
    // Twenty senders converge on host 0 at 80% of its downlink; the
    // downlink flaps three times during the burst and host 0's software
    // stalls for 150µs near the end. A 10 KB victim flow between two
    // uninvolved hosts (25 → 30) probes bystander latency throughout.
    let spec = ScenarioSpec::new(
        "incast20_flap_40h",
        FabricSpec::MultiTor { hosts: 40 },
        Workload::W2,
        0.5,
        1_500,
        99,
    )
    .with_traffic(TrafficSpec::incast(20).with_victim(VictimSpec::new(25, 30, 10_000, 500_000)))
    .with_faults(
        FaultPlan::new()
            .link_flaps(LinkId::HostDownlink(HostId(0)), 200_000, 60_000, 400_000, 3)
            .receiver_pause(HostId(0), 1_300_000, 1_450_000),
    );

    println!("# {} — W2 @ 50% of the victim downlink, seed {}", spec.name, spec.seed);
    println!();
    println!(
        "| transport | delivered | lost | fault drops | p50 | p99 | victim p50 | victim p99 |"
    );
    println!("|---|---|---|---|---|---|---|---|");
    for p in [
        Protocol::Homa,
        Protocol::Pfabric,
        Protocol::Phost,
        Protocol::Pias,
        Protocol::Ndp,
        Protocol::Stream,
    ] {
        let res = run_protocol_scenario(p, &spec, &OnewayOpts::default().with_records(), None);
        assert_eq!(res.injected, spec.messages);
        assert_eq!(res.delivered + res.aborted + res.lost, spec.messages);
        let s = SlowdownSummary::from_records(&res.records, 1);
        let v = SlowdownSummary::from_records(&res.victim_records, 1);
        println!(
            "| {} | {}/{} | {} | {} | {:.1} | {:.1} | {:.1} | {:.1} |",
            p.name(),
            res.delivered,
            res.injected,
            res.lost,
            res.stats.fault_drops,
            s.overall_p50,
            s.overall_p99,
            v.overall_p50,
            v.overall_p99,
        );
    }
    println!();
    println!(
        "slowdown = completion time / unloaded best case; victim columns are the \
         bystander flow (hosts 25→30, 10 KB every 500µs). `lost` counts one-way \
         messages whose every packet died on the downed link (fire-and-forget: \
         no transport-level delivery guarantee exists for them)."
    );
}
