//! Quickstart: run Homa RPCs through a simulated 16-node cluster.
//!
//! Builds the §5.1 cluster (16 hosts on one 10 Gbps switch), issues a few
//! echo RPCs through the full Homa stack — blind transmission, grants,
//! priorities — and prints their latencies.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use homa::HomaConfig;
use homa_baselines::{HomaMeta, HomaSimTransport};
use homa_sim::{AppEvent, HostId, Network, NetworkConfig, SimTime, Topology};

fn main() {
    // A 16-host, single-switch cluster with the paper's timing constants
    // (10 Gbps links, 250 ns switch delay, 1.5 us host software delay).
    let topo = Topology::single_switch(16);
    let mut net: Network<HomaMeta, HomaSimTransport> =
        Network::new(topo, NetworkConfig::default(), |h| {
            HomaSimTransport::new(h, HomaConfig::default())
        });

    // Issue echo RPCs of increasing size from host 0 to host 1.
    let sizes = [100u64, 1_000, 10_000, 100_000, 1_000_000];
    let mut issued_at = Vec::new();
    println!("{:>12} {:>14} {:>12}", "size (B)", "RTT (us)", "slowdown");
    for (i, &size) in sizes.iter().enumerate() {
        issued_at.push(net.now());
        net.inject_rpc(HostId(0), HostId(1), size, i as u64);

        // Drive the simulation until this RPC completes; echo requests
        // back as the server application.
        let mut done = false;
        while !done {
            net.run_next_before(SimTime::MAX).expect("events pending");
            for (at, host, ev) in net.take_app_events() {
                match ev {
                    AppEvent::RpcRequestArrived { client, rpc, request_len } => {
                        // The server application: echo the payload back.
                        net.inject_response(host, client, rpc, request_len);
                    }
                    AppEvent::RpcCompleted { tag, response_len, .. } => {
                        assert_eq!(tag as usize, i);
                        assert_eq!(response_len, size);
                        let rtt = at - issued_at[i];
                        // Best case: one request crossing + one response
                        // crossing of an idle fabric.
                        let best = 2 * net.topology().unloaded_one_way(size, 1_400, 60).as_nanos();
                        println!(
                            "{size:>12} {:>14.2} {:>12.2}",
                            rtt.as_micros_f64(),
                            rtt.as_nanos() as f64 / best as f64
                        );
                        done = true;
                    }
                    other => panic!("unexpected event {other:?}"),
                }
            }
        }
    }
    println!("\nAll RPCs completed on an idle fabric at slowdown ~1.0 — as");
    println!("expected: Homa's blind first-RTT transmission means a small RPC");
    println!("needs no scheduling round-trip at all.");
}
