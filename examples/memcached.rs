//! A memcached-like workload (W1) under load: the scenario that motivates
//! Homa's design.
//!
//! Runs the W1 (Facebook memcached ETC) message-size distribution over a
//! loaded leaf-spine fabric and prints the tail-latency picture the
//! paper's Figure 12 shows: p50/p99 slowdown per size bin at 80% load.
//!
//! ```sh
//! cargo run --release --example memcached
//! ```

use homa_bench::{run_protocol_scenario, Protocol};
use homa_harness::driver::OnewayOpts;
use homa_harness::render::slowdown_table;
use homa_harness::slowdown::SlowdownSummary;
use homa_harness::{FabricSpec, ScenarioSpec};
use homa_workloads::Workload;

fn main() {
    let spec = ScenarioSpec::new(
        "memcached_w1",
        FabricSpec::LeafSpine { racks: 3, hosts_per_rack: 8, spines: 2 }, // 24 hosts, 2 spines
        Workload::W1,
        0.8,
        20_000,
        42,
    );
    let dist = Workload::W1.dist();
    println!(
        "W1 ({}) — mean message {:.0} B, {} hosts, 80% load",
        Workload::W1.description(),
        dist.mean(),
        spec.topology().num_hosts()
    );
    println!("replay line: {}", spec.to_spec_line());

    for p in [Protocol::Homa, Protocol::Phost] {
        let res = run_protocol_scenario(p, &spec, &OnewayOpts::default().with_records(), None);
        let s = SlowdownSummary::from_records(&res.records, 10);
        println!("\n{} — delivered {}/{} messages", p.name(), res.delivered, res.injected);
        print!("{}", slowdown_table("slowdown by message-size decile:", &s));
    }
    println!("\nHoma's dynamic unscheduled priorities keep p99 slowdown flat");
    println!("across sizes; pHost's single blind priority level cannot.");
}
