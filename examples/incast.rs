//! Incast: the paper's Figure 10 scenario as a runnable demo.
//!
//! A single client issues hundreds of concurrent RPCs to 15 servers, all
//! of which respond with 10 KB at the same moment. With Homa's incast
//! control (§3.6), requests beyond a threshold are marked and servers
//! clamp the blind prefix of their responses, so the client's TOR
//! downlink never overflows. Without it, the blind responses overrun the
//! switch buffer and loss recovery craters throughput.
//!
//! ```sh
//! cargo run --release --example incast
//! ```

use homa::HomaConfig;
use homa_baselines::HomaSimTransport;
use homa_harness::driver::IncastOpts;
use homa_harness::render::fmt_bps;
use homa_harness::{FabricSpec, ScenarioSpec};
use homa_sim::SimDuration;

fn main() {
    let cluster = FabricSpec::SingleSwitch { hosts: 16 };
    println!("one client, 15 servers, 10 KB responses, 3 rounds each\n");
    println!(
        "{:>12} {:>16} {:>10} {:>16} {:>10}",
        "concurrent", "control ON", "drops", "control OFF", "drops"
    );
    for concurrent in [32u64, 128, 512] {
        let mut cells = Vec::new();
        for enabled in [true, false] {
            let cfg = HomaConfig {
                incast_threshold: if enabled { 32 } else { u32::MAX },
                ..HomaConfig::default()
            };
            let spec = ScenarioSpec::incast("incast_demo", cluster, concurrent, 0);
            let res = spec.run_incast(
                None,
                |h| HomaSimTransport::new(h, cfg.clone()),
                &IncastOpts {
                    resp_len: 10_000,
                    rounds: 3,
                    per_round_timeout: SimDuration::from_millis(500),
                },
            );
            cells.push((fmt_bps(res.throughput_bps), res.drops));
        }
        println!(
            "{concurrent:>12} {:>16} {:>10} {:>16} {:>10}",
            cells[0].0, cells[0].1, cells[1].0, cells[1].1
        );
    }
    println!("\nWith control ON the client sustains near line rate regardless of");
    println!("fan-in; with it OFF, buffer overflows past ~100 concurrent RPCs");
    println!("trigger drops and multi-millisecond recovery timeouts.");
}
